#include "ml/gru.hpp"

#include <cmath>
#include <stdexcept>

namespace netshare::ml {

namespace {
Matrix sigmoid(Matrix x) {
  for (auto& v : x.data()) v = 1.0 / (1.0 + std::exp(-v));
  return x;
}
Matrix tanh_m(Matrix x) {
  for (auto& v : x.data()) v = std::tanh(v);
  return x;
}
}  // namespace

Gru::Gru(std::size_t input_dim, std::size_t hidden_dim, Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wxz_(Matrix::randn(input_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(input_dim)))),
      whz_(Matrix::randn(hidden_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(hidden_dim)))),
      bz_(Matrix::zeros(1, hidden_dim)),
      wxr_(Matrix::randn(input_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(input_dim)))),
      whr_(Matrix::randn(hidden_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(hidden_dim)))),
      br_(Matrix::zeros(1, hidden_dim)),
      wxc_(Matrix::randn(input_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(input_dim)))),
      whc_(Matrix::randn(hidden_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(hidden_dim)))),
      bc_(Matrix::zeros(1, hidden_dim)) {}

std::vector<Matrix> Gru::forward(const std::vector<Matrix>& xs) {
  if (xs.empty()) throw std::invalid_argument("Gru::forward: empty sequence");
  const std::size_t batch = xs[0].rows();
  Matrix h = Matrix::zeros(batch, hidden_dim_);
  cache_.clear();
  cache_.reserve(xs.size());
  std::vector<Matrix> hs;
  hs.reserve(xs.size());
  for (const Matrix& x : xs) {
    if (x.cols() != input_dim_) {
      throw std::invalid_argument("Gru::forward: input dim mismatch");
    }
    // All four products per gate go through the blocked kernel layer
    // (ml/kernels.hpp); biases are added in place (same value order as
    // add_row_broadcast, one temporary less per gate).
    Matrix az = matmul(x, wxz_.value) + matmul(h, whz_.value);
    add_row_broadcast_inplace(az, bz_.value);
    Matrix z = sigmoid(std::move(az));
    Matrix ar = matmul(x, wxr_.value) + matmul(h, whr_.value);
    add_row_broadcast_inplace(ar, br_.value);
    Matrix r = sigmoid(std::move(ar));
    Matrix rh = hadamard(r, h);
    Matrix ac = matmul(x, wxc_.value) + matmul(rh, whc_.value);
    add_row_broadcast_inplace(ac, bc_.value);
    Matrix c = tanh_m(std::move(ac));
    // h_t = (1-z) ⊙ h_prev + z ⊙ c
    Matrix h_next(batch, hidden_dim_);
    for (std::size_t i = 0; i < h_next.size(); ++i) {
      h_next.data()[i] = (1.0 - z.data()[i]) * h.data()[i] +
                         z.data()[i] * c.data()[i];
    }
    cache_.push_back({x, h, z, r, c, std::move(rh)});
    h = h_next;
    hs.push_back(h);
  }
  return hs;
}

std::vector<Matrix> Gru::backward(const std::vector<Matrix>& grad_hs) {
  const std::size_t T = cache_.size();
  if (grad_hs.size() != T) {
    throw std::invalid_argument("Gru::backward: grad count mismatch");
  }
  const std::size_t batch = cache_[0].x.rows();
  std::vector<Matrix> grad_xs(T);
  Matrix dh_carry = Matrix::zeros(batch, hidden_dim_);

  for (std::size_t ti = T; ti-- > 0;) {
    const StepCache& s = cache_[ti];
    Matrix dh = grad_hs[ti] + dh_carry;

    // Gate gradients (pre-activation).
    Matrix daz(batch, hidden_dim_);  // through z
    Matrix dac(batch, hidden_dim_);  // through candidate c
    Matrix dh_prev(batch, hidden_dim_);
    for (std::size_t i = 0; i < dh.size(); ++i) {
      const double z = s.z.data()[i];
      const double c = s.c.data()[i];
      const double hp = s.h_prev.data()[i];
      const double g = dh.data()[i];
      daz.data()[i] = g * (c - hp) * z * (1.0 - z);
      dac.data()[i] = g * z * (1.0 - c * c);
      dh_prev.data()[i] = g * (1.0 - z);
    }

    // Candidate path: ac = x Wxc + (r ⊙ h_prev) Whc + bc.
    Matrix drh = matmul_trans_b(dac, whc_.value);
    Matrix dar(batch, hidden_dim_);
    for (std::size_t i = 0; i < drh.size(); ++i) {
      const double r = s.r.data()[i];
      const double hp = s.h_prev.data()[i];
      dar.data()[i] = drh.data()[i] * hp * r * (1.0 - r);
      dh_prev.data()[i] += drh.data()[i] * r;
    }

    // Parameter gradients.
    wxz_.grad += matmul_trans_a(s.x, daz);
    whz_.grad += matmul_trans_a(s.h_prev, daz);
    bz_.grad += sum_rows(daz);
    wxr_.grad += matmul_trans_a(s.x, dar);
    whr_.grad += matmul_trans_a(s.h_prev, dar);
    br_.grad += sum_rows(dar);
    wxc_.grad += matmul_trans_a(s.x, dac);
    whc_.grad += matmul_trans_a(s.rh, dac);  // r ⊙ h_prev cached by forward
    bc_.grad += sum_rows(dac);

    // Input gradient.
    Matrix dx = matmul_trans_b(daz, wxz_.value);
    dx += matmul_trans_b(dar, wxr_.value);
    dx += matmul_trans_b(dac, wxc_.value);
    grad_xs[ti] = std::move(dx);

    // Hidden-state gradient to previous step.
    dh_prev += matmul_trans_b(daz, whz_.value);
    dh_prev += matmul_trans_b(dar, whr_.value);
    dh_carry = std::move(dh_prev);
  }
  return grad_xs;
}

std::vector<Parameter*> Gru::parameters() {
  return {&wxz_, &whz_, &bz_, &wxr_, &whr_, &br_, &wxc_, &whc_, &bc_};
}

void Gru::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

}  // namespace netshare::ml
