#include "ml/gru.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "ml/kernels.hpp"

namespace netshare::ml {

Gru::Gru(std::size_t input_dim, std::size_t hidden_dim, Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wxz_(Matrix::randn(input_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(input_dim)))),
      whz_(Matrix::randn(hidden_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(hidden_dim)))),
      bz_(Matrix::zeros(1, hidden_dim)),
      wxr_(Matrix::randn(input_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(input_dim)))),
      whr_(Matrix::randn(hidden_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(hidden_dim)))),
      br_(Matrix::zeros(1, hidden_dim)),
      wxc_(Matrix::randn(input_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(input_dim)))),
      whc_(Matrix::randn(hidden_dim, hidden_dim, rng,
                         std::sqrt(1.0 / static_cast<double>(hidden_dim)))),
      bc_(Matrix::zeros(1, hidden_dim)) {}

const std::vector<Matrix>& Gru::forward(const std::vector<Matrix>& xs) {
  if (xs.empty()) throw std::invalid_argument("Gru::forward: empty sequence");
  const std::size_t batch = xs[0].rows();
  const std::size_t T = xs.size();
  if (cache_.size() < T) cache_.resize(T);
  hs_.resize(T);
  steps_ = T;
  h0_.resize(batch, hidden_dim_);
  h0_.fill(0.0);
  const Matrix* h = &h0_;
  for (std::size_t t = 0; t < T; ++t) {
    const Matrix& x = xs[t];
    if (x.cols() != input_dim_) {
      throw std::invalid_argument("Gru::forward: input dim mismatch");
    }
    StepCache& s = cache_[t];
    s.x = x;
    s.h_prev = *h;
    // All four products per gate go through the blocked kernel layer via
    // the fused gate (ml/kernels.hpp): pre-activation rounding sequence is
    // identical to matmul + matmul + add + row-broadcast bias + activation.
    using kernels::GateAct;
    kernels::gru_gate_into(x, wxz_.value, *h, whz_.value, bz_.value,
                           GateAct::kSigmoid, gate_scratch_, s.z);
    kernels::gru_gate_into(x, wxr_.value, *h, whr_.value, br_.value,
                           GateAct::kSigmoid, gate_scratch_, s.r);
    hadamard_into(s.r, *h, s.rh);
    kernels::gru_gate_into(x, wxc_.value, s.rh, whc_.value, bc_.value,
                           GateAct::kTanh, gate_scratch_, s.c);
    // h_t = (1-z) ⊙ h_prev + z ⊙ c
    Matrix& h_next = hs_[t];
    h_next.resize(batch, hidden_dim_);
    for (std::size_t i = 0; i < h_next.size(); ++i) {
      h_next.data()[i] = (1.0 - s.z.data()[i]) * h->data()[i] +
                         s.z.data()[i] * s.c.data()[i];
    }
    h = &h_next;
  }
  return hs_;
}

void Gru::step_into(const Matrix& x, const Matrix& h_prev, Matrix& h_out) {
  if (x.cols() != input_dim_) {
    throw std::invalid_argument("Gru::step_into: input dim mismatch");
  }
  if (h_prev.rows() != x.rows() || h_prev.cols() != hidden_dim_) {
    throw std::invalid_argument("Gru::step_into: hidden shape mismatch");
  }
  // Mirror of one forward() iteration: same fused-gate kernels in the same
  // order, so each row matches the full unroll bitwise (gate_scratch_ is
  // per-call scratch inside gru_gate_into and carries nothing across calls).
  using kernels::GateAct;
  kernels::gru_gate_into(x, wxz_.value, h_prev, whz_.value, bz_.value,
                         GateAct::kSigmoid, gate_scratch_, step_z_);
  kernels::gru_gate_into(x, wxr_.value, h_prev, whr_.value, br_.value,
                         GateAct::kSigmoid, gate_scratch_, step_r_);
  hadamard_into(step_r_, h_prev, step_rh_);
  kernels::gru_gate_into(x, wxc_.value, step_rh_, whc_.value, bc_.value,
                         GateAct::kTanh, gate_scratch_, step_c_);
  h_out.resize(x.rows(), hidden_dim_);
  for (std::size_t i = 0; i < h_out.size(); ++i) {
    h_out.data()[i] = (1.0 - step_z_.data()[i]) * h_prev.data()[i] +
                      step_z_.data()[i] * step_c_.data()[i];
  }
}

const std::vector<Matrix>& Gru::backward(const std::vector<Matrix>& grad_hs) {
  const std::size_t T = steps_;
  if (grad_hs.size() != T) {
    throw std::invalid_argument("Gru::backward: grad count mismatch");
  }
  const std::size_t batch = cache_[0].x.rows();
  grad_xs_.resize(T);
  dh_carry_.resize(batch, hidden_dim_);
  dh_carry_.fill(0.0);

  for (std::size_t ti = T; ti-- > 0;) {
    const StepCache& s = cache_[ti];
    // dh = grad_hs[ti] + dh_carry, element order as Matrix::operator+.
    dh_.resize(batch, hidden_dim_);
    for (std::size_t i = 0; i < dh_.size(); ++i) {
      dh_.data()[i] = grad_hs[ti].data()[i] + dh_carry_.data()[i];
    }

    // Gate gradients (pre-activation).
    daz_.resize(batch, hidden_dim_);  // through z
    dac_.resize(batch, hidden_dim_);  // through candidate c
    dhp_.resize(batch, hidden_dim_);
    for (std::size_t i = 0; i < dh_.size(); ++i) {
      const double z = s.z.data()[i];
      const double c = s.c.data()[i];
      const double hp = s.h_prev.data()[i];
      const double g = dh_.data()[i];
      daz_.data()[i] = g * (c - hp) * z * (1.0 - z);
      dac_.data()[i] = g * z * (1.0 - c * c);
      dhp_.data()[i] = g * (1.0 - z);
    }

    // Candidate path: ac = x Wxc + (r ⊙ h_prev) Whc + bc.
    kernels::matmul_trans_b_into(dac_, whc_.value, drh_);
    dar_.resize(batch, hidden_dim_);
    for (std::size_t i = 0; i < drh_.size(); ++i) {
      const double r = s.r.data()[i];
      const double hp = s.h_prev.data()[i];
      dar_.data()[i] = drh_.data()[i] * hp * r * (1.0 - r);
      dhp_.data()[i] += drh_.data()[i] * r;
    }

    // Parameter gradients. The accumulating kernel folds each product into
    // the gradient with the rounding sequence of the scratch-then-
    // `grad += matmul_trans_a(...)` path it replaces.
    kernels::matmul_trans_a_acc_into(s.x, daz_, wxz_.grad);
    kernels::matmul_trans_a_acc_into(s.h_prev, daz_, whz_.grad);
    sum_rows_into(daz_, bg_);
    bz_.grad += bg_;
    kernels::matmul_trans_a_acc_into(s.x, dar_, wxr_.grad);
    kernels::matmul_trans_a_acc_into(s.h_prev, dar_, whr_.grad);
    sum_rows_into(dar_, bg_);
    br_.grad += bg_;
    kernels::matmul_trans_a_acc_into(s.x, dac_, wxc_.grad);
    kernels::matmul_trans_a_acc_into(s.rh, dac_, whc_.grad);  // r ⊙ h_prev
    sum_rows_into(dac_, bg_);
    bc_.grad += bg_;

    // Input gradient.
    Matrix& dx = grad_xs_[ti];
    kernels::matmul_trans_b_into(daz_, wxz_.value, dx);
    kernels::matmul_trans_b_into(dar_, wxr_.value, mm_);
    dx += mm_;
    kernels::matmul_trans_b_into(dac_, wxc_.value, mm_);
    dx += mm_;

    // Hidden-state gradient to previous step.
    kernels::matmul_trans_b_into(daz_, whz_.value, mm_);
    dhp_ += mm_;
    kernels::matmul_trans_b_into(dar_, whr_.value, mm_);
    dhp_ += mm_;
    std::swap(dh_carry_, dhp_);
  }
  return grad_xs_;
}

std::vector<Parameter*> Gru::parameters() {
  return {&wxz_, &whz_, &bz_, &wxr_, &whr_, &br_, &wxc_, &whc_, &bc_};
}

void Gru::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

}  // namespace netshare::ml
