// Blocked parallel matmul kernels. This translation unit is compiled with
// aggressive per-file optimization flags (see src/CMakeLists.txt) but with
// FP contraction disabled: every partial product is rounded (mul) and then
// accumulated (add) exactly like the serial reference in matrix.cpp, which
// is what makes the blocked/vectorized loops bitwise-reproducible.
#include "ml/kernels.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "ml/kernels_simd.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::ml::kernels {
namespace {

std::mutex g_mutex;
KernelConfig g_config;
std::shared_ptr<ThreadPool> g_pool;  // lazily sized to effective_threads - 1

// Set while a worker (or the caller) executes a panel; a kernel invoked from
// inside a kernel task must not re-enter the pool (its tasks would queue
// behind the panel that is waiting on them), so nested dispatch runs serial.
thread_local bool tl_in_kernel_task = false;

struct PanelFlag {
  PanelFlag() { tl_in_kernel_task = true; }
  ~PanelFlag() { tl_in_kernel_task = false; }
};

std::size_t env_threads() {
  static const std::size_t cached = [] {
    const char* s = std::getenv("NETSHARE_KERNEL_THREADS");
    if (s == nullptr) return std::size_t{0};
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    return end == s ? std::size_t{0} : static_cast<std::size_t>(v);
  }();
  return cached;
}

std::size_t resolve_threads(const KernelConfig& cfg) {
  if (cfg.threads > 0) return cfg.threads;
  if (env_threads() > 0) return env_threads();
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// Callers hold their own shared_ptr so a concurrent set_config resize can
// never destroy a pool that still has panels in flight.
std::shared_ptr<ThreadPool> acquire_pool(std::size_t workers) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_pool || g_pool->size() != workers) {
    g_pool = std::make_shared<ThreadPool>(workers);
  }
  return g_pool;
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

// Splits [0, rows) into contiguous panels and runs body(begin, end) on the
// calling thread plus the shared pool. body must touch only output rows
// [begin, end): that disjointness is the whole determinism argument — the
// partition can change with the thread count without changing any element's
// reduction order.
template <typename Body>
void run_row_panels(std::size_t rows, std::size_t flops, const Body& body) {
  if (rows == 0) return;
  std::size_t threads;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    threads = flops < g_config.min_parallel_flops ? 1
                                                  : resolve_threads(g_config);
  }
  if (tl_in_kernel_task) threads = 1;
  const std::size_t ntasks = std::min(threads, rows);
  if (ntasks <= 1) {
    TELEM_COUNT("kernels.dispatch_serial");
    body(std::size_t{0}, rows);
    return;
  }
  TELEM_COUNT("kernels.dispatch_parallel");
  auto pool = acquire_pool(ntasks - 1);
  const std::size_t chunk = (rows + ntasks - 1) / ntasks;
  std::vector<std::future<void>> futures;
  futures.reserve(ntasks - 1);
  for (std::size_t t = 1; t < ntasks; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(rows, begin + chunk);
    if (begin >= end) break;
    futures.push_back(pool->submit([&body, begin, end] {
      PanelFlag flag;
      body(begin, end);
    }));
  }
  {
    PanelFlag flag;
    body(std::size_t{0}, std::min(rows, chunk));
  }
  // Wait for every panel before returning (or rethrowing): the panels
  // reference stack state of this frame. Only the first exception can
  // propagate; later ones are reported through the diag channel instead of
  // vanishing silently.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      } else {
        try {
          std::rethrow_exception(std::current_exception());
        } catch (const std::exception& e) {
          TELEM_DIAG(::netshare::telemetry::Severity::kError,
                     "kernels.panel_exception_dropped",
                     "secondary panel exception not rethrown: %s", e.what());
        } catch (...) {
          TELEM_DIAG(::netshare::telemetry::Severity::kError,
                     "kernels.panel_exception_dropped",
                     "secondary non-std panel exception not rethrown");
        }
      }
    }
  }
  if (first) std::rethrow_exception(first);
}

// --- SIMD tier resolution --------------------------------------------------

// NETSHARE_SIMD cap: 1 = no cap, 0 = scalar only, -1 = not yet read.
std::atomic<int> g_simd_env_cap{-1};

int simd_env_cap() {
  int cap = g_simd_env_cap.load(std::memory_order_acquire);
  if (cap < 0) {
    reload_simd_env();
    cap = g_simd_env_cap.load(std::memory_order_acquire);
  }
  return cap;
}

SimdTier resolve_tier(const KernelConfig& cfg) {
  if (cfg.simd == SimdTier::kScalar) return SimdTier::kScalar;
  if (simd_env_cap() == 0) return SimdTier::kScalar;
  return supported_tier();
}

// --- online autotuner ------------------------------------------------------
//
// The SIMD panels take a register-block width (`jtile`) that trades column
// reuse of the broadcast A element against live accumulator count. Instead
// of guessing, the first few dispatches of each (op, shape) each time ONE
// candidate on the real operands — no re-running, so even non-idempotent
// kernels (the += accumulator) tune safely — and once every candidate has
// kTuneRounds timings the argmin is memoized for the life of the process.
// Every candidate is bitwise-identical, so the plan can only change speed.

constexpr unsigned kDefaultJtile = 16;
constexpr unsigned kCandidates[] = {8, 16, 32};
constexpr int kTuneRounds = 2;
// Below this flop count a dispatch is too short to time meaningfully (and
// too cheap for the plan to matter): use the default plan, skip the memo.
constexpr std::size_t kTuneMinFlops = std::size_t{1} << 14;

std::size_t candidate_count(TuneOp op) {
  // The fused gate keeps two accumulator sets live (x·wx and h·wh), so the
  // 32-column candidate would spill; it competes at 8 and 16 only.
  return op == TuneOp::kGate ? 2 : 3;
}

struct TuneState {
  unsigned decided = 0;  // 0 = still sampling, else the winning jtile
  std::array<double, 3> best_s{std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::infinity()};
  std::array<std::uint8_t, 3> trials{};
};

std::shared_mutex g_tune_mutex;
std::unordered_map<std::uint64_t, TuneState> g_tune;

std::uint64_t tune_key(TuneOp op, std::size_t m, std::size_t k,
                       std::size_t n) {
  constexpr std::uint64_t kDimMask = (std::uint64_t{1} << 20) - 1;
  const auto clampd = [](std::size_t d) {
    return std::uint64_t{d} < kDimMask ? std::uint64_t{d} : kDimMask;
  };
  return (static_cast<std::uint64_t>(op) << 60) | (clampd(m) << 40) |
         (clampd(k) << 20) | clampd(n);
}

// Runs `run(jtile)` exactly once, picking the width from the memoized plan
// when decided, otherwise timing the least-sampled candidate.
template <typename Run>
void run_autotuned(const KernelConfig& cfg, TuneOp op, std::size_t m,
                   std::size_t k, std::size_t n, std::size_t flops,
                   const Run& run) {
  if (cfg.force_jtile != 0) {
    run(cfg.force_jtile);
    return;
  }
  if (!cfg.autotune || flops < kTuneMinFlops) {
    run(kDefaultJtile);
    return;
  }
  const std::uint64_t key = tune_key(op, m, k, n);
  {
    std::shared_lock<std::shared_mutex> lock(g_tune_mutex);
    auto it = g_tune.find(key);
    if (it != g_tune.end() && it->second.decided != 0) {
      const unsigned jt = it->second.decided;
      lock.unlock();
      run(jt);
      return;
    }
  }
  int slot = -1;
  unsigned jt = kDefaultJtile;
  {
    std::unique_lock<std::shared_mutex> lock(g_tune_mutex);
    TuneState& st = g_tune[key];
    if (st.decided != 0) {
      jt = st.decided;
    } else {
      slot = 0;
      for (std::size_t c = 1; c < candidate_count(op); ++c) {
        if (st.trials[c] < st.trials[slot]) slot = static_cast<int>(c);
      }
      jt = kCandidates[slot];
    }
  }
  if (slot < 0) {
    run(jt);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  run(jt);
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::unique_lock<std::shared_mutex> lock(g_tune_mutex);
  TuneState& st = g_tune[key];
  if (st.decided != 0) return;  // another thread finished sampling
  const auto s = static_cast<std::size_t>(slot);
  st.best_s[s] = std::min(st.best_s[s], sec);
  st.trials[s] = static_cast<std::uint8_t>(st.trials[s] + 1);
  bool complete = true;
  for (std::size_t c = 0; c < candidate_count(op); ++c) {
    if (st.trials[c] < kTuneRounds) complete = false;
  }
  if (complete) {
    std::size_t win = 0;
    for (std::size_t c = 1; c < candidate_count(op); ++c) {
      if (st.best_s[c] < st.best_s[win]) win = c;
    }
    st.decided = kCandidates[win];
    TELEM_COUNT("kernels.autotune_decided");
  }
}

}  // namespace

SimdTier supported_tier() {
  return simd::cpu_supports_avx2() ? SimdTier::kAvx2 : SimdTier::kScalar;
}

SimdTier active_tier() { return resolve_tier(config()); }

void reload_simd_env() {
  const char* s = std::getenv("NETSHARE_SIMD");
  int cap = 1;
  if (s != nullptr &&
      (std::strcmp(s, "off") == 0 || std::strcmp(s, "scalar") == 0 ||
       std::strcmp(s, "0") == 0)) {
    cap = 0;
  }
  g_simd_env_cap.store(cap, std::memory_order_release);
}

TunePlan tuned_plan(TuneOp op, std::size_t rows, std::size_t inner,
                    std::size_t cols) {
  std::shared_lock<std::shared_mutex> lock(g_tune_mutex);
  auto it = g_tune.find(tune_key(op, rows, inner, cols));
  if (it == g_tune.end() || it->second.decided == 0) return TunePlan{};
  return TunePlan{it->second.decided, true};
}

KernelConfig config() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_config;
}

void set_config(const KernelConfig& cfg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_config = cfg;
}

std::size_t effective_threads() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return resolve_threads(g_config);
}

bool in_kernel_task() { return tl_in_kernel_task; }

namespace {

// Shared driver for C = A·B (+ optional bias): SIMD tier runs the
// register-resident panels from kernels_simd.cpp; scalar tier (or the bias
// epilogue on scalar) is handled by the callers below.
void matmul_simd(const Matrix& a, const Matrix& b, const double* bias,
                 Matrix& c, const KernelConfig& cfg) {
  const std::size_t R = a.rows(), K = a.cols(), C = b.cols();
  const std::size_t flops = 2 * R * K * C;
  TELEM_COUNT("kernels.tier_avx2");
  run_autotuned(cfg, TuneOp::kMatmul, R, K, C, flops, [&](unsigned jt) {
    run_row_panels(R, flops, [&](std::size_t r0, std::size_t r1) {
      if (bias == nullptr) {
        simd::matmul_panel(a.row_ptr(0), K, b.row_ptr(0), C, c.row_ptr(0), C,
                           K, C, r0, r1, jt);
      } else {
        simd::matmul_bias_panel(a.row_ptr(0), K, b.row_ptr(0), C, bias,
                                c.row_ptr(0), C, K, C, r0, r1, jt);
      }
    });
  });
}

}  // namespace

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.cols() == b.rows(), "kernels::matmul: inner dimension mismatch");
  c.resize(a.rows(), b.cols());
  const KernelConfig cfg = config();
  if (resolve_tier(cfg) == SimdTier::kAvx2) {
    matmul_simd(a, b, nullptr, c, cfg);
    return;
  }
  c.fill(0.0);
  const std::size_t K = a.cols(), C = b.cols();
  const std::size_t KB = std::max<std::size_t>(1, cfg.block_k);
  const std::size_t JB = std::max<std::size_t>(1, cfg.block_j);
  run_row_panels(a.rows(), 2 * a.rows() * K * C,
                 [&](std::size_t r0, std::size_t r1) {
    for (std::size_t kk = 0; kk < K; kk += KB) {
      const std::size_t kend = std::min(K, kk + KB);
      for (std::size_t jj = 0; jj < C; jj += JB) {
        const std::size_t jend = std::min(C, jj + JB);
        for (std::size_t i = r0; i < r1; ++i) {
          double* crow = c.row_ptr(i);
          const double* arow = a.row_ptr(i);
          std::size_t k = kk;
          // Four k-steps per pass over the c row: each element still takes
          // its partial products one at a time in ascending-k order (mul
          // rounded, then add rounded), so results match the one-k-at-a-time
          // reference bitwise while c is loaded/stored 4x less often.
          for (; k + 4 <= kend; k += 4) {
            const double a0 = arow[k], a1 = arow[k + 1];
            const double a2 = arow[k + 2], a3 = arow[k + 3];
            if (a0 == 0.0 || a1 == 0.0 || a2 == 0.0 || a3 == 0.0) {
              // The reference skips zero multiplicands entirely (c + 0*inf
              // would differ); keep its per-k skip semantics on this block.
              for (std::size_t k2 = k; k2 < k + 4; ++k2) {
                const double aik = arow[k2];
                if (aik == 0.0) continue;
                const double* brow = b.row_ptr(k2);
                for (std::size_t j = jj; j < jend; ++j) {
                  crow[j] += aik * brow[j];
                }
              }
              continue;
            }
            const double* b0 = b.row_ptr(k);
            const double* b1 = b.row_ptr(k + 1);
            const double* b2 = b.row_ptr(k + 2);
            const double* b3 = b.row_ptr(k + 3);
            for (std::size_t j = jj; j < jend; ++j) {
              double t = crow[j];
              t += a0 * b0[j];
              t += a1 * b1[j];
              t += a2 * b2[j];
              t += a3 * b3[j];
              crow[j] = t;
            }
          }
          for (; k < kend; ++k) {
            const double aik = arow[k];
            if (aik == 0.0) continue;
            const double* brow = b.row_ptr(k);
            for (std::size_t j = jj; j < jend; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  });
}

namespace {

// Shared driver for C = Aᵀ·B and C += Aᵀ·B on the SIMD tier. Output rows
// are columns of A, mirroring the scalar kernel's panel decomposition.
void trans_a_simd(const Matrix& a, const Matrix& b, Matrix& c, bool acc,
                  const KernelConfig& cfg) {
  const std::size_t R = a.cols(), K = a.rows(), C = b.cols();
  const std::size_t flops = 2 * K * R * C;
  TELEM_COUNT("kernels.tier_avx2");
  run_autotuned(cfg, TuneOp::kTransA, R, K, C, flops, [&](unsigned jt) {
    run_row_panels(R, flops, [&](std::size_t r0, std::size_t r1) {
      if (acc) {
        simd::matmul_trans_a_acc_panel(a.row_ptr(0), R, b.row_ptr(0), C,
                                       c.row_ptr(0), C, K, C, r0, r1, jt);
      } else {
        simd::matmul_trans_a_panel(a.row_ptr(0), R, b.row_ptr(0), C,
                                   c.row_ptr(0), C, K, C, r0, r1, jt);
      }
    });
  });
}

}  // namespace

void matmul_trans_a_into(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.rows() == b.rows(), "kernels::matmul_trans_a: row mismatch");
  c.resize(a.cols(), b.cols());
  const KernelConfig cfg = config();
  if (resolve_tier(cfg) == SimdTier::kAvx2) {
    trans_a_simd(a, b, c, /*acc=*/false, cfg);
    return;
  }
  c.fill(0.0);
  const std::size_t K = a.rows(), C = b.cols();
  const std::size_t KB = std::max<std::size_t>(1, cfg.block_k);
  const std::size_t JB = std::max<std::size_t>(1, cfg.block_j);
  // Output rows are columns of A; a.row_ptr(k)[i] is contiguous in i, so the
  // panel loop still streams A rows.
  run_row_panels(a.cols(), 2 * K * a.cols() * C,
                 [&](std::size_t r0, std::size_t r1) {
    for (std::size_t kk = 0; kk < K; kk += KB) {
      const std::size_t kend = std::min(K, kk + KB);
      for (std::size_t jj = 0; jj < C; jj += JB) {
        const std::size_t jend = std::min(C, jj + JB);
        std::size_t k = kk;
        // Same 4-way k-unroll as matmul_into: per element the four partial
        // products still land one at a time in ascending-k order.
        for (; k + 4 <= kend; k += 4) {
          const double* ak0 = a.row_ptr(k);
          const double* ak1 = a.row_ptr(k + 1);
          const double* ak2 = a.row_ptr(k + 2);
          const double* ak3 = a.row_ptr(k + 3);
          const double* bk0 = b.row_ptr(k);
          const double* bk1 = b.row_ptr(k + 1);
          const double* bk2 = b.row_ptr(k + 2);
          const double* bk3 = b.row_ptr(k + 3);
          for (std::size_t i = r0; i < r1; ++i) {
            const double a0 = ak0[i], a1 = ak1[i], a2 = ak2[i], a3 = ak3[i];
            double* crow = c.row_ptr(i);
            if (a0 == 0.0 || a1 == 0.0 || a2 == 0.0 || a3 == 0.0) {
              for (std::size_t k2 = k; k2 < k + 4; ++k2) {
                const double aki = a.row_ptr(k2)[i];
                if (aki == 0.0) continue;
                const double* brow = b.row_ptr(k2);
                for (std::size_t j = jj; j < jend; ++j) {
                  crow[j] += aki * brow[j];
                }
              }
              continue;
            }
            for (std::size_t j = jj; j < jend; ++j) {
              double t = crow[j];
              t += a0 * bk0[j];
              t += a1 * bk1[j];
              t += a2 * bk2[j];
              t += a3 * bk3[j];
              crow[j] = t;
            }
          }
        }
        for (; k < kend; ++k) {
          const double* arow = a.row_ptr(k);
          const double* brow = b.row_ptr(k);
          for (std::size_t i = r0; i < r1; ++i) {
            const double aki = arow[i];
            if (aki == 0.0) continue;
            double* crow = c.row_ptr(i);
            for (std::size_t j = jj; j < jend; ++j) crow[j] += aki * brow[j];
          }
        }
      }
    }
  });
}

void matmul_trans_b_into(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.cols() == b.cols(), "kernels::matmul_trans_b: col mismatch");
  c.resize(a.rows(), b.rows());
  const KernelConfig cfg = config();
  const std::size_t K = a.cols(), C = b.rows();
  if (resolve_tier(cfg) == SimdTier::kAvx2 && a.rows() > 0 && C > 0) {
    // Pack Bᵀ once on the calling thread (pure data movement, before the
    // panel fan-out so workers only read it), then every inner loop streams
    // contiguous column lanes in ascending-k order. The pack buffer is
    // thread_local grow-only scratch: zero steady-state allocations.
    static thread_local std::vector<double> tl_bt;
    if (tl_bt.size() < K * C) tl_bt.resize(K * C);
    // Pin the packed panel's address on the calling thread: the lambda runs
    // on pool workers, whose own tl_bt is a different (empty) instance.
    const double* bt = tl_bt.data();
    if (K > 0) simd::pack_transpose(b.row_ptr(0), C, K, K, tl_bt.data());
    const std::size_t flops = 2 * a.rows() * K * C;
    TELEM_COUNT("kernels.tier_avx2");
    run_autotuned(cfg, TuneOp::kTransB, a.rows(), K, C, flops,
                  [&](unsigned jt) {
      run_row_panels(a.rows(), flops, [&](std::size_t r0, std::size_t r1) {
        simd::matmul_trans_b_panel(a.row_ptr(0), K, bt, c.row_ptr(0), C, K,
                                   C, r0, r1, jt);
      });
    });
    return;
  }
  const std::size_t JB = std::max<std::size_t>(1, cfg.block_j);
  run_row_panels(a.rows(), 2 * a.rows() * K * C,
                 [&](std::size_t r0, std::size_t r1) {
    for (std::size_t jj = 0; jj < C; jj += JB) {
      const std::size_t jend = std::min(C, jj + JB);
      for (std::size_t i = r0; i < r1; ++i) {
        const double* arow = a.row_ptr(i);
        double* crow = c.row_ptr(i);
        std::size_t j = jj;
        // Register blocking over eight/four B rows: independent dot products
        // advance together, each still a plain ascending-k scalar reduction,
        // so every element matches the reference dot product bitwise. Eight
        // concurrent accumulator chains hide the FP-add latency that bounds
        // a single chain.
        for (; j + 8 <= jend; j += 8) {
          const double* b0 = b.row_ptr(j);
          const double* b1 = b.row_ptr(j + 1);
          const double* b2 = b.row_ptr(j + 2);
          const double* b3 = b.row_ptr(j + 3);
          const double* b4 = b.row_ptr(j + 4);
          const double* b5 = b.row_ptr(j + 5);
          const double* b6 = b.row_ptr(j + 6);
          const double* b7 = b.row_ptr(j + 7);
          double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
          double acc4 = 0.0, acc5 = 0.0, acc6 = 0.0, acc7 = 0.0;
          for (std::size_t k = 0; k < K; ++k) {
            const double ak = arow[k];
            acc0 += ak * b0[k];
            acc1 += ak * b1[k];
            acc2 += ak * b2[k];
            acc3 += ak * b3[k];
            acc4 += ak * b4[k];
            acc5 += ak * b5[k];
            acc6 += ak * b6[k];
            acc7 += ak * b7[k];
          }
          crow[j] = acc0;
          crow[j + 1] = acc1;
          crow[j + 2] = acc2;
          crow[j + 3] = acc3;
          crow[j + 4] = acc4;
          crow[j + 5] = acc5;
          crow[j + 6] = acc6;
          crow[j + 7] = acc7;
        }
        for (; j + 4 <= jend; j += 4) {
          const double* b0 = b.row_ptr(j);
          const double* b1 = b.row_ptr(j + 1);
          const double* b2 = b.row_ptr(j + 2);
          const double* b3 = b.row_ptr(j + 3);
          double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
          for (std::size_t k = 0; k < K; ++k) {
            const double ak = arow[k];
            acc0 += ak * b0[k];
            acc1 += ak * b1[k];
            acc2 += ak * b2[k];
            acc3 += ak * b3[k];
          }
          crow[j] = acc0;
          crow[j + 1] = acc1;
          crow[j + 2] = acc2;
          crow[j + 3] = acc3;
        }
        for (; j < jend; ++j) {
          const double* brow = b.row_ptr(j);
          double acc = 0.0;
          for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
          crow[j] = acc;
        }
      }
    }
  });
}

void matmul_bias_into(const Matrix& a, const Matrix& b, const Matrix& bias,
                      Matrix& c) {
  require(a.cols() == b.rows(),
          "kernels::matmul_bias: inner dimension mismatch");
  require(bias.rows() == 1 && bias.cols() == b.cols(),
          "kernels::matmul_bias: bias must be 1 x cols(b)");
  const KernelConfig cfg = config();
  if (resolve_tier(cfg) == SimdTier::kAvx2) {
    c.resize(a.rows(), b.cols());
    matmul_simd(a, b, bias.row_ptr(0), c, cfg);
    return;
  }
  matmul_into(a, b, c);
  add_row_broadcast_inplace(c, bias);
}

void matmul_trans_a_acc_into(const Matrix& a, const Matrix& b, Matrix& acc) {
  require(a.rows() == b.rows(), "kernels::matmul_trans_a_acc: row mismatch");
  require(acc.rows() == a.cols() && acc.cols() == b.cols(),
          "kernels::matmul_trans_a_acc: acc shape mismatch");
  const KernelConfig cfg = config();
  if (resolve_tier(cfg) == SimdTier::kAvx2) {
    trans_a_simd(a, b, acc, /*acc=*/true, cfg);
    return;
  }
  // Scalar tier: materialize the product into thread-local scratch, then
  // fold with one add per element — the exact sequence the backward-pass
  // call sites used before this kernel existed. Grow-only warm-up alloc.
  static thread_local Matrix tl_prod;
  matmul_trans_a_into(a, b, tl_prod);
  acc += tl_prod;
}

void gru_gate_into(const Matrix& x, const Matrix& wx, const Matrix& h,
                   const Matrix& wh, const Matrix& bias, GateAct act,
                   Matrix& scratch, Matrix& out) {
  require(bias.rows() == 1 && bias.cols() == wx.cols(),
          "kernels::gru_gate: bias must be 1 x cols(wx)");
  require(wx.cols() == wh.cols(), "kernels::gru_gate: gate width mismatch");
  const KernelConfig cfg = config();
  if (resolve_tier(cfg) == SimdTier::kAvx2) {
    require(x.cols() == wx.rows(), "kernels::matmul: inner dimension mismatch");
    require(h.cols() == wh.rows(), "kernels::matmul: inner dimension mismatch");
    require(x.rows() == h.rows(), "kernels::gru_gate: x/h batch mismatch");
    out.resize(x.rows(), wx.cols());
    const std::size_t R = x.rows(), G = wx.cols();
    const std::size_t In = x.cols(), Hd = h.cols();
    const std::size_t flops = 2 * R * (In + Hd) * G;
    TELEM_COUNT("kernels.tier_avx2");
    run_autotuned(cfg, TuneOp::kGate, R, In + Hd, G, flops, [&](unsigned jt) {
      run_row_panels(R, flops, [&](std::size_t r0, std::size_t r1) {
        simd::gate_panel(x.row_ptr(0), In, wx.row_ptr(0), G, h.row_ptr(0),
                         Hd, wh.row_ptr(0), G, bias.row_ptr(0),
                         act == GateAct::kSigmoid ? 0 : 1, out.row_ptr(0), G,
                         In, Hd, G, r0, r1, jt);
      });
    });
    return;  // scratch untouched: both products stayed register-resident
  }
  matmul_into(x, wx, out);      // out     = x · Wx
  matmul_into(h, wh, scratch);  // scratch = h · Wh
  require(scratch.rows() == out.rows(),
          "kernels::gru_gate: x/h batch mismatch");
  // Epilogue, per element: (out + scratch) rounded, + bias rounded, then the
  // activation — the exact rounding sequence of operator+ followed by
  // add_row_broadcast_inplace followed by sigmoid/tanh on the allocating
  // path, fused into one pass with no temporaries.
  const double* brow = bias.row_ptr(0);
  const std::size_t rows = out.rows(), cols = out.cols();
  for (std::size_t i = 0; i < rows; ++i) {
    double* orow = out.row_ptr(i);
    const double* srow = scratch.row_ptr(i);
    if (act == GateAct::kSigmoid) {
      for (std::size_t j = 0; j < cols; ++j) {
        orow[j] = detail::sigmoid1((orow[j] + srow[j]) + brow[j]);
      }
    } else {
      for (std::size_t j = 0; j < cols; ++j) {
        orow[j] = std::tanh((orow[j] + srow[j]) + brow[j]);
      }
    }
  }
}

}  // namespace netshare::ml::kernels
