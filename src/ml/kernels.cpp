// Blocked parallel matmul kernels. This translation unit is compiled with
// aggressive per-file optimization flags (see src/CMakeLists.txt) but with
// FP contraction disabled: every partial product is rounded (mul) and then
// accumulated (add) exactly like the serial reference in matrix.cpp, which
// is what makes the blocked/vectorized loops bitwise-reproducible.
#include "ml/kernels.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::ml::kernels {
namespace {

std::mutex g_mutex;
KernelConfig g_config;
std::shared_ptr<ThreadPool> g_pool;  // lazily sized to effective_threads - 1

// Set while a worker (or the caller) executes a panel; a kernel invoked from
// inside a kernel task must not re-enter the pool (its tasks would queue
// behind the panel that is waiting on them), so nested dispatch runs serial.
thread_local bool tl_in_kernel_task = false;

struct PanelFlag {
  PanelFlag() { tl_in_kernel_task = true; }
  ~PanelFlag() { tl_in_kernel_task = false; }
};

std::size_t env_threads() {
  static const std::size_t cached = [] {
    const char* s = std::getenv("NETSHARE_KERNEL_THREADS");
    if (s == nullptr) return std::size_t{0};
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    return end == s ? std::size_t{0} : static_cast<std::size_t>(v);
  }();
  return cached;
}

std::size_t resolve_threads(const KernelConfig& cfg) {
  if (cfg.threads > 0) return cfg.threads;
  if (env_threads() > 0) return env_threads();
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// Callers hold their own shared_ptr so a concurrent set_config resize can
// never destroy a pool that still has panels in flight.
std::shared_ptr<ThreadPool> acquire_pool(std::size_t workers) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_pool || g_pool->size() != workers) {
    g_pool = std::make_shared<ThreadPool>(workers);
  }
  return g_pool;
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

// Splits [0, rows) into contiguous panels and runs body(begin, end) on the
// calling thread plus the shared pool. body must touch only output rows
// [begin, end): that disjointness is the whole determinism argument — the
// partition can change with the thread count without changing any element's
// reduction order.
template <typename Body>
void run_row_panels(std::size_t rows, std::size_t flops, const Body& body) {
  if (rows == 0) return;
  std::size_t threads;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    threads = flops < g_config.min_parallel_flops ? 1
                                                  : resolve_threads(g_config);
  }
  if (tl_in_kernel_task) threads = 1;
  const std::size_t ntasks = std::min(threads, rows);
  if (ntasks <= 1) {
    TELEM_COUNT("kernels.dispatch_serial");
    body(std::size_t{0}, rows);
    return;
  }
  TELEM_COUNT("kernels.dispatch_parallel");
  auto pool = acquire_pool(ntasks - 1);
  const std::size_t chunk = (rows + ntasks - 1) / ntasks;
  std::vector<std::future<void>> futures;
  futures.reserve(ntasks - 1);
  for (std::size_t t = 1; t < ntasks; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(rows, begin + chunk);
    if (begin >= end) break;
    futures.push_back(pool->submit([&body, begin, end] {
      PanelFlag flag;
      body(begin, end);
    }));
  }
  {
    PanelFlag flag;
    body(std::size_t{0}, std::min(rows, chunk));
  }
  // Wait for every panel before returning (or rethrowing): the panels
  // reference stack state of this frame. Only the first exception can
  // propagate; later ones are reported through the diag channel instead of
  // vanishing silently.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      } else {
        try {
          std::rethrow_exception(std::current_exception());
        } catch (const std::exception& e) {
          TELEM_DIAG(::netshare::telemetry::Severity::kError,
                     "kernels.panel_exception_dropped",
                     "secondary panel exception not rethrown: %s", e.what());
        } catch (...) {
          TELEM_DIAG(::netshare::telemetry::Severity::kError,
                     "kernels.panel_exception_dropped",
                     "secondary non-std panel exception not rethrown");
        }
      }
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace

KernelConfig config() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_config;
}

void set_config(const KernelConfig& cfg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_config = cfg;
}

std::size_t effective_threads() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return resolve_threads(g_config);
}

bool in_kernel_task() { return tl_in_kernel_task; }

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.cols() == b.rows(), "kernels::matmul: inner dimension mismatch");
  c.resize(a.rows(), b.cols());
  c.fill(0.0);
  const KernelConfig cfg = config();
  const std::size_t K = a.cols(), C = b.cols();
  const std::size_t KB = std::max<std::size_t>(1, cfg.block_k);
  const std::size_t JB = std::max<std::size_t>(1, cfg.block_j);
  run_row_panels(a.rows(), 2 * a.rows() * K * C,
                 [&](std::size_t r0, std::size_t r1) {
    for (std::size_t kk = 0; kk < K; kk += KB) {
      const std::size_t kend = std::min(K, kk + KB);
      for (std::size_t jj = 0; jj < C; jj += JB) {
        const std::size_t jend = std::min(C, jj + JB);
        for (std::size_t i = r0; i < r1; ++i) {
          double* crow = c.row_ptr(i);
          const double* arow = a.row_ptr(i);
          std::size_t k = kk;
          // Four k-steps per pass over the c row: each element still takes
          // its partial products one at a time in ascending-k order (mul
          // rounded, then add rounded), so results match the one-k-at-a-time
          // reference bitwise while c is loaded/stored 4x less often.
          for (; k + 4 <= kend; k += 4) {
            const double a0 = arow[k], a1 = arow[k + 1];
            const double a2 = arow[k + 2], a3 = arow[k + 3];
            if (a0 == 0.0 || a1 == 0.0 || a2 == 0.0 || a3 == 0.0) {
              // The reference skips zero multiplicands entirely (c + 0*inf
              // would differ); keep its per-k skip semantics on this block.
              for (std::size_t k2 = k; k2 < k + 4; ++k2) {
                const double aik = arow[k2];
                if (aik == 0.0) continue;
                const double* brow = b.row_ptr(k2);
                for (std::size_t j = jj; j < jend; ++j) {
                  crow[j] += aik * brow[j];
                }
              }
              continue;
            }
            const double* b0 = b.row_ptr(k);
            const double* b1 = b.row_ptr(k + 1);
            const double* b2 = b.row_ptr(k + 2);
            const double* b3 = b.row_ptr(k + 3);
            for (std::size_t j = jj; j < jend; ++j) {
              double t = crow[j];
              t += a0 * b0[j];
              t += a1 * b1[j];
              t += a2 * b2[j];
              t += a3 * b3[j];
              crow[j] = t;
            }
          }
          for (; k < kend; ++k) {
            const double aik = arow[k];
            if (aik == 0.0) continue;
            const double* brow = b.row_ptr(k);
            for (std::size_t j = jj; j < jend; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  });
}

void matmul_trans_a_into(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.rows() == b.rows(), "kernels::matmul_trans_a: row mismatch");
  c.resize(a.cols(), b.cols());
  c.fill(0.0);
  const KernelConfig cfg = config();
  const std::size_t K = a.rows(), C = b.cols();
  const std::size_t KB = std::max<std::size_t>(1, cfg.block_k);
  const std::size_t JB = std::max<std::size_t>(1, cfg.block_j);
  // Output rows are columns of A; a.row_ptr(k)[i] is contiguous in i, so the
  // panel loop still streams A rows.
  run_row_panels(a.cols(), 2 * K * a.cols() * C,
                 [&](std::size_t r0, std::size_t r1) {
    for (std::size_t kk = 0; kk < K; kk += KB) {
      const std::size_t kend = std::min(K, kk + KB);
      for (std::size_t jj = 0; jj < C; jj += JB) {
        const std::size_t jend = std::min(C, jj + JB);
        std::size_t k = kk;
        // Same 4-way k-unroll as matmul_into: per element the four partial
        // products still land one at a time in ascending-k order.
        for (; k + 4 <= kend; k += 4) {
          const double* ak0 = a.row_ptr(k);
          const double* ak1 = a.row_ptr(k + 1);
          const double* ak2 = a.row_ptr(k + 2);
          const double* ak3 = a.row_ptr(k + 3);
          const double* bk0 = b.row_ptr(k);
          const double* bk1 = b.row_ptr(k + 1);
          const double* bk2 = b.row_ptr(k + 2);
          const double* bk3 = b.row_ptr(k + 3);
          for (std::size_t i = r0; i < r1; ++i) {
            const double a0 = ak0[i], a1 = ak1[i], a2 = ak2[i], a3 = ak3[i];
            double* crow = c.row_ptr(i);
            if (a0 == 0.0 || a1 == 0.0 || a2 == 0.0 || a3 == 0.0) {
              for (std::size_t k2 = k; k2 < k + 4; ++k2) {
                const double aki = a.row_ptr(k2)[i];
                if (aki == 0.0) continue;
                const double* brow = b.row_ptr(k2);
                for (std::size_t j = jj; j < jend; ++j) {
                  crow[j] += aki * brow[j];
                }
              }
              continue;
            }
            for (std::size_t j = jj; j < jend; ++j) {
              double t = crow[j];
              t += a0 * bk0[j];
              t += a1 * bk1[j];
              t += a2 * bk2[j];
              t += a3 * bk3[j];
              crow[j] = t;
            }
          }
        }
        for (; k < kend; ++k) {
          const double* arow = a.row_ptr(k);
          const double* brow = b.row_ptr(k);
          for (std::size_t i = r0; i < r1; ++i) {
            const double aki = arow[i];
            if (aki == 0.0) continue;
            double* crow = c.row_ptr(i);
            for (std::size_t j = jj; j < jend; ++j) crow[j] += aki * brow[j];
          }
        }
      }
    }
  });
}

void matmul_trans_b_into(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.cols() == b.cols(), "kernels::matmul_trans_b: col mismatch");
  c.resize(a.rows(), b.rows());
  const KernelConfig cfg = config();
  const std::size_t K = a.cols(), C = b.rows();
  const std::size_t JB = std::max<std::size_t>(1, cfg.block_j);
  run_row_panels(a.rows(), 2 * a.rows() * K * C,
                 [&](std::size_t r0, std::size_t r1) {
    for (std::size_t jj = 0; jj < C; jj += JB) {
      const std::size_t jend = std::min(C, jj + JB);
      for (std::size_t i = r0; i < r1; ++i) {
        const double* arow = a.row_ptr(i);
        double* crow = c.row_ptr(i);
        std::size_t j = jj;
        // Register blocking over eight/four B rows: independent dot products
        // advance together, each still a plain ascending-k scalar reduction,
        // so every element matches the reference dot product bitwise. Eight
        // concurrent accumulator chains hide the FP-add latency that bounds
        // a single chain.
        for (; j + 8 <= jend; j += 8) {
          const double* b0 = b.row_ptr(j);
          const double* b1 = b.row_ptr(j + 1);
          const double* b2 = b.row_ptr(j + 2);
          const double* b3 = b.row_ptr(j + 3);
          const double* b4 = b.row_ptr(j + 4);
          const double* b5 = b.row_ptr(j + 5);
          const double* b6 = b.row_ptr(j + 6);
          const double* b7 = b.row_ptr(j + 7);
          double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
          double acc4 = 0.0, acc5 = 0.0, acc6 = 0.0, acc7 = 0.0;
          for (std::size_t k = 0; k < K; ++k) {
            const double ak = arow[k];
            acc0 += ak * b0[k];
            acc1 += ak * b1[k];
            acc2 += ak * b2[k];
            acc3 += ak * b3[k];
            acc4 += ak * b4[k];
            acc5 += ak * b5[k];
            acc6 += ak * b6[k];
            acc7 += ak * b7[k];
          }
          crow[j] = acc0;
          crow[j + 1] = acc1;
          crow[j + 2] = acc2;
          crow[j + 3] = acc3;
          crow[j + 4] = acc4;
          crow[j + 5] = acc5;
          crow[j + 6] = acc6;
          crow[j + 7] = acc7;
        }
        for (; j + 4 <= jend; j += 4) {
          const double* b0 = b.row_ptr(j);
          const double* b1 = b.row_ptr(j + 1);
          const double* b2 = b.row_ptr(j + 2);
          const double* b3 = b.row_ptr(j + 3);
          double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
          for (std::size_t k = 0; k < K; ++k) {
            const double ak = arow[k];
            acc0 += ak * b0[k];
            acc1 += ak * b1[k];
            acc2 += ak * b2[k];
            acc3 += ak * b3[k];
          }
          crow[j] = acc0;
          crow[j + 1] = acc1;
          crow[j + 2] = acc2;
          crow[j + 3] = acc3;
        }
        for (; j < jend; ++j) {
          const double* brow = b.row_ptr(j);
          double acc = 0.0;
          for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
          crow[j] = acc;
        }
      }
    }
  });
}

void gru_gate_into(const Matrix& x, const Matrix& wx, const Matrix& h,
                   const Matrix& wh, const Matrix& bias, GateAct act,
                   Matrix& scratch, Matrix& out) {
  require(bias.rows() == 1 && bias.cols() == wx.cols(),
          "kernels::gru_gate: bias must be 1 x cols(wx)");
  require(wx.cols() == wh.cols(), "kernels::gru_gate: gate width mismatch");
  matmul_into(x, wx, out);      // out     = x · Wx
  matmul_into(h, wh, scratch);  // scratch = h · Wh
  require(scratch.rows() == out.rows(),
          "kernels::gru_gate: x/h batch mismatch");
  // Epilogue, per element: (out + scratch) rounded, + bias rounded, then the
  // activation — the exact rounding sequence of operator+ followed by
  // add_row_broadcast_inplace followed by sigmoid/tanh on the allocating
  // path, fused into one pass with no temporaries.
  const double* brow = bias.row_ptr(0);
  const std::size_t rows = out.rows(), cols = out.cols();
  for (std::size_t i = 0; i < rows; ++i) {
    double* orow = out.row_ptr(i);
    const double* srow = scratch.row_ptr(i);
    if (act == GateAct::kSigmoid) {
      for (std::size_t j = 0; j < cols; ++j) {
        orow[j] = detail::sigmoid1((orow[j] + srow[j]) + brow[j]);
      }
    } else {
      for (std::size_t j = 0; j < cols; ++j) {
        orow[j] = std::tanh((orow[j] + srow[j]) + brow[j]);
      }
    }
  }
}

}  // namespace netshare::ml::kernels
