// Shape-keyed pool of reusable Matrix buffers — the allocation arena for the
// steady-state-zero-allocation training hot path (DESIGN.md §6).
//
// Ownership model: one Workspace per model instance (DoppelGanger owns one;
// so does every chunk model ChunkedTrainer fine-tunes in parallel). There is
// deliberately NO global workspace: per-model pools mean chunk-parallel
// fine-tuning never shares mutable buffers across threads, so the pool needs
// no locks and TSan stays green.
//
// Usage pattern: call reset() at the top of each training update, then
// get(rows, cols) for every temporary. get() returns a buffer of exactly
// that shape whose *contents are unspecified* (stale values from the
// previous iteration) — callers overwrite or fill(). Within one
// reset-epoch, successive get() calls for the same shape return *distinct*
// buffers (a cursor walks the pool), so a deterministic call sequence maps
// each temporary to the same pooled buffer every iteration. After the first
// iteration warms the pool, get() performs no heap allocation.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ml/kernels.hpp"
#include "ml/matrix.hpp"

namespace netshare::ml {

class Workspace {
 public:
  // A rows x cols buffer with unspecified contents, valid until the next
  // reset(). Stable address: pooled matrices live behind unique_ptr, so
  // references survive pool growth.
  Matrix& get(std::size_t rows, std::size_t cols);

  // Marks every pooled buffer reusable. No memory is released; the next
  // epoch's get() calls re-issue the same buffers in call order.
  void reset();

  // Observability (bench / tests): pool footprint.
  std::size_t pooled_buffers() const;
  std::size_t pooled_doubles() const;

  // Per-model snapshot of the kernel autotuner (DESIGN.md §10): delegates to
  // the process-wide kernels::tuned_plan and, once that shape's plan is
  // decided, memoizes it here so the model's own lock-free cache answers all
  // later queries. Undecided shapes return the default plan uncached, so the
  // snapshot never goes stale. Same shapes always yield the same plan.
  kernels::TunePlan tune_plan(kernels::TuneOp op, std::size_t rows,
                              std::size_t inner, std::size_t cols);
  std::size_t cached_plans() const { return plans_.size(); }

 private:
  struct Pool {
    std::vector<std::unique_ptr<Matrix>> buffers;
    std::size_t next = 0;
  };
  std::unordered_map<std::uint64_t, Pool> pools_;
  std::unordered_map<std::uint64_t, kernels::TunePlan> plans_;
};

}  // namespace netshare::ml
