#include "ml/health.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace netshare::ml::health {

namespace {
// Armed flag is the only field touched concurrently: tests set the plan
// before spawning training threads and clear it after they join, so the
// release store / acquire load pair orders the plain plan fields.
std::atomic<bool> g_armed{false};
FaultPlan g_plan;
std::atomic<int> g_snapshot_writes{0};
}  // namespace

void set_fault_plan(const FaultPlan& plan) {
  g_plan = plan;
  g_snapshot_writes.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void clear_fault_plan() {
  g_armed.store(false, std::memory_order_release);
  g_plan = FaultPlan{};
  g_snapshot_writes.store(0, std::memory_order_relaxed);
}

bool fault_injection_armed() {
  return g_armed.load(std::memory_order_acquire);
}

const FaultPlan& fault_plan() { return g_plan; }

bool consume_snapshot_write_fault() {
  if (!g_armed.load(std::memory_order_acquire)) return false;
  if (g_plan.fail_nth_snapshot_write <= 0) return false;
  const int n = g_snapshot_writes.fetch_add(1, std::memory_order_relaxed) + 1;
  return n == g_plan.fail_nth_snapshot_write;
}

HealthMonitor::HealthMonitor(const HealthConfig& config,
                             std::vector<Parameter*> params,
                             std::uint64_t model_seed)
    : config_(config), params_(std::move(params)), model_seed_(model_seed) {
  // A checkpoint is only ever taken at a step that just passed a check, so
  // the cadence must be a multiple of the check cadence (rounded up).
  checkpoint_every_ = config_.checkpoint_every;
  if (config_.check_every > 0 && checkpoint_every_ > 0) {
    const int k = config_.check_every;
    checkpoint_every_ = ((checkpoint_every_ + k - 1) / k) * k;
  }
  std::size_t total = 0;
  for (const Parameter* p : params_) total += p->value.size();
  last_good_.resize(total);
}

void HealthMonitor::begin_run() { checkpoint(0); }

bool HealthMonitor::check(long long step, double d_loss, double g_loss,
                          double d_grad_norm, double g_grad_norm) {
  ++stats_.checks;
  TELEM_COUNT("gan.health.checks");
  const char* what = nullptr;
  double value = 0.0;
  const auto bad = [](double v, double limit) {
    return !std::isfinite(v) || std::fabs(v) > limit;
  };
  if (bad(d_loss, config_.loss_limit)) {
    what = "d_loss";
    value = d_loss;
  } else if (bad(g_loss, config_.loss_limit)) {
    what = "g_loss";
    value = g_loss;
  } else if (bad(d_grad_norm, config_.grad_norm_limit)) {
    what = "d_grad_norm";
    value = d_grad_norm;
  } else if (bad(g_grad_norm, config_.grad_norm_limit)) {
    what = "g_grad_norm";
    value = g_grad_norm;
  } else {
    for (const Parameter* p : params_) {
      const std::vector<double>& data = p->value.data();
      for (const double v : data) {
        if (!std::isfinite(v) || std::fabs(v) > config_.param_limit) {
          what = "parameter";
          value = v;
          break;
        }
      }
      if (what != nullptr) break;
    }
  }
  if (what == nullptr) return true;
  // Cold path: divergence detected. The string allocation is fine here.
  stats_.last_bad_step = step;
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s = %g at step %lld", what, value, step);
  stats_.last_issue = buf;
  return false;
}

void HealthMonitor::checkpoint(long long step) {
  std::size_t at = 0;
  for (const Parameter* p : params_) {
    const std::vector<double>& data = p->value.data();
    std::copy(data.begin(), data.end(), last_good_.begin() +
                                            static_cast<std::ptrdiff_t>(at));
    at += data.size();
  }
  last_good_step_ = step;
  ++stats_.checkpoints;
}

long long HealthMonitor::rollback() {
  std::size_t at = 0;
  for (Parameter* p : params_) {
    std::vector<double>& data = p->value.data();
    std::copy(last_good_.begin() + static_cast<std::ptrdiff_t>(at),
              last_good_.begin() + static_cast<std::ptrdiff_t>(at + data.size()),
              data.begin());
    at += data.size();
  }
  ++stats_.rollbacks;
  TELEM_COUNT("gan.health.rollbacks");
  return last_good_step_;
}

void HealthMonitor::maybe_inject(long long step) {
  if (!fault_injection_armed()) return;
  const FaultPlan& plan = fault_plan();
  if (plan.nan_at_step < 0 || step != plan.nan_at_step) return;
  if (plan.nan_model_seed != FaultPlan::kAnyModel &&
      plan.nan_model_seed != model_seed_) {
    return;
  }
  if (injected_once_ && !plan.nan_repeats) return;
  injected_once_ = true;
  params_.front()->value(0, 0) = std::numeric_limits<double>::quiet_NaN();
  ++stats_.injected;
}

}  // namespace netshare::ml::health
