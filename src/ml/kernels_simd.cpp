// AVX2 bodies for the vectorized kernel tier. Compiled with -mavx2 (no
// -mfma) and -ffp-contract=off — see src/CMakeLists.txt. Every loop below
// vectorizes across independent output columns; the ascending-k reduction
// chain of each output element is never split, reordered, or contracted,
// which is the whole bitwise-identity argument (kernels_simd.hpp,
// DESIGN.md §10).
#include "ml/kernels_simd.hpp"

#if !defined(__AVX2__)

// Toolchain cannot emit AVX2 (src/CMakeLists.txt found no -mavx2): the tier
// reports unsupported and the panel bodies — which dispatch then never
// calls — become unreachable stubs.
namespace netshare::ml::kernels::simd {
bool cpu_supports_avx2() { return false; }
void matmul_panel(const double*, std::size_t, const double*, std::size_t,
                  double*, std::size_t, std::size_t, std::size_t, std::size_t,
                  std::size_t, unsigned) {}
void matmul_bias_panel(const double*, std::size_t, const double*, std::size_t,
                       const double*, double*, std::size_t, std::size_t,
                       std::size_t, std::size_t, std::size_t, unsigned) {}
void matmul_trans_a_panel(const double*, std::size_t, const double*,
                          std::size_t, double*, std::size_t, std::size_t,
                          std::size_t, std::size_t, std::size_t, unsigned) {}
void matmul_trans_a_acc_panel(const double*, std::size_t, const double*,
                              std::size_t, double*, std::size_t, std::size_t,
                              std::size_t, std::size_t, std::size_t,
                              unsigned) {}
void matmul_trans_b_panel(const double*, std::size_t, const double*, double*,
                          std::size_t, std::size_t, std::size_t, std::size_t,
                          std::size_t, unsigned) {}
void pack_transpose(const double*, std::size_t, std::size_t, std::size_t,
                    double*) {}
void gate_panel(const double*, std::size_t, const double*, std::size_t,
                const double*, std::size_t, const double*, std::size_t,
                const double*, int, double*, std::size_t, std::size_t,
                std::size_t, std::size_t, std::size_t, std::size_t,
                unsigned) {}
}  // namespace netshare::ml::kernels::simd

#else  // __AVX2__

#include <immintrin.h>

#include <cmath>

#include "ml/matrix.hpp"

namespace netshare::ml::kernels::simd {
namespace {

// Processes register tiles of NV 4-wide vectors (4*NV output columns)
// starting at column j0; returns the first unprocessed column. The k loop
// carries one accumulator chain per output column, ascending k, mul rounded
// then add rounded, with the reference a(i,k)==0.0 skip. kBias adds bias[j]
// to the completed sum (one extra rounding, matching
// add_row_broadcast_inplace after matmul_into).
template <int NV, bool kBias>
std::size_t mm_tiles(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, const double* bias, double* c,
                     std::size_t ldc, std::size_t K, std::size_t C,
                     std::size_t j0, std::size_t r0, std::size_t r1) {
  constexpr std::size_t JT = 4 * NV;
  for (; j0 + JT <= C; j0 += JT) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* arow = a + i * lda;
      __m256d acc[NV];
      for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_pd();
      for (std::size_t k = 0; k < K; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        const __m256d av = _mm256_set1_pd(aik);
        const double* bp = b + k * ldb + j0;
        for (int v = 0; v < NV; ++v) {
          acc[v] = _mm256_add_pd(
              acc[v], _mm256_mul_pd(av, _mm256_loadu_pd(bp + 4 * v)));
        }
      }
      double* cp = c + i * ldc + j0;
      if constexpr (kBias) {
        for (int v = 0; v < NV; ++v) {
          _mm256_storeu_pd(
              cp + 4 * v,
              _mm256_add_pd(acc[v], _mm256_loadu_pd(bias + j0 + 4 * v)));
        }
      } else {
        for (int v = 0; v < NV; ++v) _mm256_storeu_pd(cp + 4 * v, acc[v]);
      }
    }
  }
  return j0;
}

template <bool kBias>
void mm_panel(const double* a, std::size_t lda, const double* b,
              std::size_t ldb, const double* bias, double* c, std::size_t ldc,
              std::size_t K, std::size_t C, std::size_t r0, std::size_t r1,
              unsigned jtile) {
  std::size_t j0 = 0;
  switch (jtile) {
    case 8:
      j0 = mm_tiles<2, kBias>(a, lda, b, ldb, bias, c, ldc, K, C, 0, r0, r1);
      break;
    case 32:
      j0 = mm_tiles<8, kBias>(a, lda, b, ldb, bias, c, ldc, K, C, 0, r0, r1);
      break;
    default:
      j0 = mm_tiles<4, kBias>(a, lda, b, ldb, bias, c, ldc, K, C, 0, r0, r1);
      break;
  }
  j0 = mm_tiles<1, kBias>(a, lda, b, ldb, bias, c, ldc, K, C, j0, r0, r1);
  for (; j0 < C; ++j0) {  // scalar column tail: same chain, same skip
    for (std::size_t i = r0; i < r1; ++i) {
      const double* arow = a + i * lda;
      double acc = 0.0;
      for (std::size_t k = 0; k < K; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        acc += aik * b[k * ldb + j0];
      }
      c[i * ldc + j0] = kBias ? acc + bias[j0] : acc;
    }
  }
}

// Aᵀ·B tiles: output row i reduces over a(k,i) — a scalar strided load
// broadcast across the column lanes. kAcc folds the completed sum into the
// existing c value with one rounding (the `grad += product` sequence).
template <int NV, bool kAcc>
std::size_t ta_tiles(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, std::size_t ldc,
                     std::size_t K, std::size_t C, std::size_t j0,
                     std::size_t r0, std::size_t r1) {
  constexpr std::size_t JT = 4 * NV;
  for (; j0 + JT <= C; j0 += JT) {
    for (std::size_t i = r0; i < r1; ++i) {
      __m256d acc[NV];
      for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_pd();
      for (std::size_t k = 0; k < K; ++k) {
        const double aki = a[k * lda + i];
        if (aki == 0.0) continue;
        const __m256d av = _mm256_set1_pd(aki);
        const double* bp = b + k * ldb + j0;
        for (int v = 0; v < NV; ++v) {
          acc[v] = _mm256_add_pd(
              acc[v], _mm256_mul_pd(av, _mm256_loadu_pd(bp + 4 * v)));
        }
      }
      double* cp = c + i * ldc + j0;
      if constexpr (kAcc) {
        for (int v = 0; v < NV; ++v) {
          _mm256_storeu_pd(cp + 4 * v,
                           _mm256_add_pd(_mm256_loadu_pd(cp + 4 * v), acc[v]));
        }
      } else {
        for (int v = 0; v < NV; ++v) _mm256_storeu_pd(cp + 4 * v, acc[v]);
      }
    }
  }
  return j0;
}

template <bool kAcc>
void ta_panel(const double* a, std::size_t lda, const double* b,
              std::size_t ldb, double* c, std::size_t ldc, std::size_t K,
              std::size_t C, std::size_t r0, std::size_t r1, unsigned jtile) {
  std::size_t j0 = 0;
  switch (jtile) {
    case 8:
      j0 = ta_tiles<2, kAcc>(a, lda, b, ldb, c, ldc, K, C, 0, r0, r1);
      break;
    case 32:
      j0 = ta_tiles<8, kAcc>(a, lda, b, ldb, c, ldc, K, C, 0, r0, r1);
      break;
    default:
      j0 = ta_tiles<4, kAcc>(a, lda, b, ldb, c, ldc, K, C, 0, r0, r1);
      break;
  }
  j0 = ta_tiles<1, kAcc>(a, lda, b, ldb, c, ldc, K, C, j0, r0, r1);
  for (; j0 < C; ++j0) {
    for (std::size_t i = r0; i < r1; ++i) {
      double acc = 0.0;
      for (std::size_t k = 0; k < K; ++k) {
        const double aki = a[k * lda + i];
        if (aki == 0.0) continue;
        acc += aki * b[k * ldb + j0];
      }
      double* cp = c + i * ldc + j0;
      if constexpr (kAcc) {
        *cp += acc;
      } else {
        *cp = acc;
      }
    }
  }
}

// A·Bᵀ tiles over the packed transpose bt (stride C): the ascending-k loop
// reads contiguous lanes, so each of the 4*NV concurrent dot products is a
// plain scalar chain — no zero-skip, matching the scalar trans_b kernel.
template <int NV>
std::size_t tb_tiles(const double* a, std::size_t lda, const double* bt,
                     double* c, std::size_t ldc, std::size_t K, std::size_t C,
                     std::size_t j0, std::size_t r0, std::size_t r1) {
  constexpr std::size_t JT = 4 * NV;
  for (; j0 + JT <= C; j0 += JT) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* arow = a + i * lda;
      __m256d acc[NV];
      for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_pd();
      for (std::size_t k = 0; k < K; ++k) {
        const __m256d av = _mm256_set1_pd(arow[k]);
        const double* bp = bt + k * C + j0;
        for (int v = 0; v < NV; ++v) {
          acc[v] = _mm256_add_pd(
              acc[v], _mm256_mul_pd(av, _mm256_loadu_pd(bp + 4 * v)));
        }
      }
      double* cp = c + i * ldc + j0;
      for (int v = 0; v < NV; ++v) _mm256_storeu_pd(cp + 4 * v, acc[v]);
    }
  }
  return j0;
}

}  // namespace

bool cpu_supports_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

void matmul_panel(const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* c, std::size_t ldc, std::size_t K,
                  std::size_t C, std::size_t r0, std::size_t r1,
                  unsigned jtile) {
  mm_panel<false>(a, lda, b, ldb, nullptr, c, ldc, K, C, r0, r1, jtile);
}

void matmul_bias_panel(const double* a, std::size_t lda, const double* b,
                       std::size_t ldb, const double* bias, double* c,
                       std::size_t ldc, std::size_t K, std::size_t C,
                       std::size_t r0, std::size_t r1, unsigned jtile) {
  mm_panel<true>(a, lda, b, ldb, bias, c, ldc, K, C, r0, r1, jtile);
}

void matmul_trans_a_panel(const double* a, std::size_t lda, const double* b,
                          std::size_t ldb, double* c, std::size_t ldc,
                          std::size_t K, std::size_t C, std::size_t r0,
                          std::size_t r1, unsigned jtile) {
  ta_panel<false>(a, lda, b, ldb, c, ldc, K, C, r0, r1, jtile);
}

void matmul_trans_a_acc_panel(const double* a, std::size_t lda,
                              const double* b, std::size_t ldb, double* c,
                              std::size_t ldc, std::size_t K, std::size_t C,
                              std::size_t r0, std::size_t r1, unsigned jtile) {
  ta_panel<true>(a, lda, b, ldb, c, ldc, K, C, r0, r1, jtile);
}

void matmul_trans_b_panel(const double* a, std::size_t lda, const double* bt,
                          double* c, std::size_t ldc, std::size_t K,
                          std::size_t C, std::size_t r0, std::size_t r1,
                          unsigned jtile) {
  std::size_t j0 = 0;
  switch (jtile) {
    case 8:
      j0 = tb_tiles<2>(a, lda, bt, c, ldc, K, C, 0, r0, r1);
      break;
    case 32:
      j0 = tb_tiles<8>(a, lda, bt, c, ldc, K, C, 0, r0, r1);
      break;
    default:
      j0 = tb_tiles<4>(a, lda, bt, c, ldc, K, C, 0, r0, r1);
      break;
  }
  j0 = tb_tiles<1>(a, lda, bt, c, ldc, K, C, j0, r0, r1);
  for (; j0 < C; ++j0) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* arow = a + i * lda;
      double acc = 0.0;
      for (std::size_t k = 0; k < K; ++k) acc += arow[k] * bt[k * C + j0];
      c[i * ldc + j0] = acc;
    }
  }
}

void pack_transpose(const double* b, std::size_t rows, std::size_t cols,
                    std::size_t ldb, double* bt) {
  constexpr std::size_t TB = 32;  // cache-blocked scalar transpose
  for (std::size_t jj = 0; jj < rows; jj += TB) {
    const std::size_t jend = jj + TB < rows ? jj + TB : rows;
    for (std::size_t kk = 0; kk < cols; kk += TB) {
      const std::size_t kend = kk + TB < cols ? kk + TB : cols;
      for (std::size_t j = jj; j < jend; ++j) {
        const double* brow = b + j * ldb;
        for (std::size_t k = kk; k < kend; ++k) bt[k * rows + j] = brow[k];
      }
    }
  }
}

namespace {

// Fused-gate register tiles. Both product sums complete in registers (each
// its own ascending-k chain with the reference zero-skip), then the
// epilogue applies (sum_x + sum_h) + bias — the scalar tier's rounding
// sequence — before the activation. The sigmoid is decomposed exactly as
// detail::sigmoid1: e = exp(-v) (scalar libm, bit-identical to the scalar
// tier), then 1/(1+e) with a lane-wise IEEE add and divide.
template <int NV>
std::size_t gate_tiles(const double* x, std::size_t ldx, const double* wx,
                       std::size_t ldwx, const double* h, std::size_t ldh,
                       const double* wh, std::size_t ldwh, const double* bias,
                       int act, double* out, std::size_t ldo,
                       std::size_t in_dim, std::size_t h_dim,
                       std::size_t G, std::size_t j0, std::size_t r0,
                       std::size_t r1) {
  constexpr std::size_t JT = 4 * NV;
  for (; j0 + JT <= G; j0 += JT) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* xrow = x + i * ldx;
      __m256d ax[NV];
      for (int v = 0; v < NV; ++v) ax[v] = _mm256_setzero_pd();
      for (std::size_t k = 0; k < in_dim; ++k) {
        const double xik = xrow[k];
        if (xik == 0.0) continue;
        const __m256d av = _mm256_set1_pd(xik);
        const double* wp = wx + k * ldwx + j0;
        for (int v = 0; v < NV; ++v) {
          ax[v] = _mm256_add_pd(ax[v],
                                _mm256_mul_pd(av, _mm256_loadu_pd(wp + 4 * v)));
        }
      }
      const double* hrow = h + i * ldh;
      __m256d ah[NV];
      for (int v = 0; v < NV; ++v) ah[v] = _mm256_setzero_pd();
      for (std::size_t k = 0; k < h_dim; ++k) {
        const double hik = hrow[k];
        if (hik == 0.0) continue;
        const __m256d av = _mm256_set1_pd(hik);
        const double* wp = wh + k * ldwh + j0;
        for (int v = 0; v < NV; ++v) {
          ah[v] = _mm256_add_pd(ah[v],
                                _mm256_mul_pd(av, _mm256_loadu_pd(wp + 4 * v)));
        }
      }
      double* op = out + i * ldo + j0;
      for (int v = 0; v < NV; ++v) {
        _mm256_storeu_pd(
            op + 4 * v,
            _mm256_add_pd(_mm256_add_pd(ax[v], ah[v]),
                          _mm256_loadu_pd(bias + j0 + 4 * v)));
      }
      if (act == 0) {
        double e[JT];
        for (std::size_t t = 0; t < JT; ++t) e[t] = std::exp(-op[t]);
        const __m256d one = _mm256_set1_pd(1.0);
        for (int v = 0; v < NV; ++v) {
          _mm256_storeu_pd(
              op + 4 * v,
              _mm256_div_pd(one,
                            _mm256_add_pd(one, _mm256_loadu_pd(e + 4 * v))));
        }
      } else {
        for (std::size_t t = 0; t < JT; ++t) op[t] = std::tanh(op[t]);
      }
    }
  }
  return j0;
}

}  // namespace

void gate_panel(const double* x, std::size_t ldx, const double* wx,
                std::size_t ldwx, const double* h, std::size_t ldh,
                const double* wh, std::size_t ldwh, const double* bias,
                int act, double* out, std::size_t ldo, std::size_t in_dim,
                std::size_t h_dim, std::size_t gate_dim, std::size_t r0,
                std::size_t r1, unsigned jtile) {
  std::size_t j0 = 0;
  if (jtile == 8) {
    j0 = gate_tiles<2>(x, ldx, wx, ldwx, h, ldh, wh, ldwh, bias, act, out,
                       ldo, in_dim, h_dim, gate_dim, 0, r0, r1);
  } else {  // 16 is the widest gate tile: two live accumulator sets
    j0 = gate_tiles<4>(x, ldx, wx, ldwx, h, ldh, wh, ldwh, bias, act, out,
                       ldo, in_dim, h_dim, gate_dim, 0, r0, r1);
  }
  j0 = gate_tiles<1>(x, ldx, wx, ldwx, h, ldh, wh, ldwh, bias, act, out, ldo,
                     in_dim, h_dim, gate_dim, j0, r0, r1);
  for (; j0 < gate_dim; ++j0) {  // scalar tail, same chains and epilogue
    for (std::size_t i = r0; i < r1; ++i) {
      const double* xrow = x + i * ldx;
      double sx = 0.0;
      for (std::size_t k = 0; k < in_dim; ++k) {
        const double xik = xrow[k];
        if (xik == 0.0) continue;
        sx += xik * wx[k * ldwx + j0];
      }
      const double* hrow = h + i * ldh;
      double sh = 0.0;
      for (std::size_t k = 0; k < h_dim; ++k) {
        const double hik = hrow[k];
        if (hik == 0.0) continue;
        sh += hik * wh[k * ldwh + j0];
      }
      const double pre = (sx + sh) + bias[j0];
      out[i * ldo + j0] =
          act == 0 ? ml::detail::sigmoid1(pre) : std::tanh(pre);
    }
  }
}

}  // namespace netshare::ml::kernels::simd

#endif  // __AVX2__
