#include "ml/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/layers.hpp"

namespace netshare::ml {

double mse_loss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  if (pred.rows() != target.rows() || pred.cols() != target.cols()) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  const double n = static_cast<double>(pred.size());
  double loss = 0.0;
  if (grad) *grad = Matrix(pred.rows(), pred.cols());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    loss += d * d;
    if (grad) grad->data()[i] = 2.0 * d / n;
  }
  return loss / n;
}

double bce_with_logits_loss(const Matrix& logits, const Matrix& target,
                            Matrix* grad) {
  if (logits.rows() != target.rows() || logits.cols() != target.cols()) {
    throw std::invalid_argument("bce_with_logits_loss: shape mismatch");
  }
  const double n = static_cast<double>(logits.size());
  double loss = 0.0;
  if (grad) *grad = Matrix(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double x = logits.data()[i];
    const double t = target.data()[i];
    // log(1+exp(-|x|)) + max(x,0) - x*t  (stable form)
    loss += std::log1p(std::exp(-std::fabs(x))) + std::max(x, 0.0) - x * t;
    if (grad) {
      const double sig = 1.0 / (1.0 + std::exp(-x));
      grad->data()[i] = (sig - t) / n;
    }
  }
  return loss / n;
}

double softmax_cross_entropy_loss(const Matrix& logits,
                                  const std::vector<std::size_t>& labels,
                                  Matrix* grad) {
  if (labels.size() != logits.rows()) {
    throw std::invalid_argument("softmax_cross_entropy_loss: label count");
  }
  Matrix probs = softmax_rows(logits);
  const double n = static_cast<double>(logits.rows());
  double loss = 0.0;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    if (labels[i] >= logits.cols()) {
      throw std::invalid_argument("softmax_cross_entropy_loss: label range");
    }
    loss -= std::log(std::max(probs(i, labels[i]), 1e-12));
  }
  if (grad) {
    *grad = probs;
    for (std::size_t i = 0; i < logits.rows(); ++i) {
      (*grad)(i, labels[i]) -= 1.0;
    }
    *grad *= 1.0 / n;
  }
  return loss / n;
}

double mean_score(const Matrix& scores) {
  double s = 0.0;
  for (double v : scores.data()) s += v;
  return scores.size() ? s / static_cast<double>(scores.size()) : 0.0;
}

Matrix fill_like(const Matrix& m, double value) {
  return Matrix(m.rows(), m.cols(), value);
}

}  // namespace netshare::ml
