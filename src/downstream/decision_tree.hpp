// CART decision trees: gini-impurity classification tree (the DT model, and
// the base learner of Random Forest) and variance-minimizing regression
// tree (the base learner of Gradient Boosting).
#pragma once

#include <vector>

#include "downstream/classifier.hpp"

namespace netshare::downstream {

struct TreeConfig {
  std::size_t max_depth = 8;
  std::size_t min_samples_split = 8;
  // 0 = consider all features at every split; otherwise sample this many
  // (random forest's feature bagging).
  std::size_t max_features = 0;
};

struct TreeNode {
  bool leaf = true;
  std::size_t feature = 0;
  double threshold = 0.0;
  int left = -1;   // child indices into the node pool
  int right = -1;
  double value = 0.0;            // regression output
  std::size_t label = 0;         // classification output
};

class DecisionTreeClassifier : public Classifier {
 public:
  DecisionTreeClassifier(TreeConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  std::string name() const override { return "DT"; }
  void fit(const LabeledDataset& data) override;
  std::size_t predict(std::span<const double> x) const override;

  // Fit on a row subset (bootstrap sample) — used by RandomForest.
  void fit_subset(const LabeledDataset& data,
                  const std::vector<std::size_t>& rows);

 private:
  TreeConfig config_;
  Rng rng_;
  std::vector<TreeNode> nodes_;
  std::size_t num_classes_ = 0;
};

// Regression tree on (X, residual) pairs — gradient boosting base learner.
class RegressionTree {
 public:
  RegressionTree(TreeConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  void fit(const ml::Matrix& x, const std::vector<double>& targets);
  double predict(std::span<const double> x) const;

 private:
  TreeConfig config_;
  Rng rng_;
  std::vector<TreeNode> nodes_;
};

}  // namespace netshare::downstream
