// Multinomial logistic regression trained with minibatch Adam.
#pragma once

#include <memory>

#include "downstream/classifier.hpp"
#include "ml/mlp.hpp"

namespace netshare::downstream {

struct LogisticRegressionConfig {
  int epochs = 30;
  std::size_t batch_size = 64;
  double lr = 0.05;
};

class LogisticRegression : public Classifier {
 public:
  LogisticRegression(LogisticRegressionConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  std::string name() const override { return "LR"; }
  void fit(const LabeledDataset& data) override;
  std::size_t predict(std::span<const double> x) const override;

 private:
  LogisticRegressionConfig config_;
  Rng rng_;
  std::unique_ptr<ml::Linear> linear_;
};

}  // namespace netshare::downstream
