#include "downstream/classifier.hpp"

#include <stdexcept>

#include "downstream/decision_tree.hpp"
#include "downstream/gradient_boosting.hpp"
#include "downstream/logistic_regression.hpp"
#include "downstream/mlp_classifier.hpp"
#include "downstream/random_forest.hpp"

namespace netshare::downstream {

std::unique_ptr<Classifier> make_classifier(const std::string& kind,
                                            std::uint64_t seed) {
  if (kind == "DT") {
    return std::make_unique<DecisionTreeClassifier>(TreeConfig{}, seed);
  }
  if (kind == "LR") {
    return std::make_unique<LogisticRegression>(LogisticRegressionConfig{},
                                                seed);
  }
  if (kind == "RF") {
    return std::make_unique<RandomForest>(RandomForestConfig{}, seed);
  }
  if (kind == "GB") {
    return std::make_unique<GradientBoosting>(GradientBoostingConfig{}, seed);
  }
  if (kind == "MLP") {
    return std::make_unique<MlpClassifier>(MlpClassifierConfig{}, seed);
  }
  throw std::invalid_argument("make_classifier: unknown kind '" + kind + "'");
}

}  // namespace netshare::downstream
