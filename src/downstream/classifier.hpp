// Common interface for the five supervised models of the traffic-type
// prediction experiment (Fig. 12 / Table 3).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/rng.hpp"
#include "downstream/features.hpp"

namespace netshare::downstream {

class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual std::string name() const = 0;
  virtual void fit(const LabeledDataset& data) = 0;
  virtual std::size_t predict(std::span<const double> x) const = 0;

  // Fraction of correctly classified rows.
  double accuracy(const LabeledDataset& data) const;
};

// Factory for the paper's five models: "DT", "LR", "RF", "GB", "MLP".
std::unique_ptr<Classifier> make_classifier(const std::string& kind,
                                            std::uint64_t seed);

}  // namespace netshare::downstream
