// NetML flow representations (Yang, Kpotufe, Feamster 2020) and the
// anomaly-detection harness of the paper's App. #3 (Fig. 14 / Table 4).
//
// Six supported modes over flows with > 1 packet: IAT, SIZE, IAT_SIZE,
// STATS, SAMP-NUM, SAMP-SIZE. The detector is a one-class SVM; the
// experiment compares anomaly ratios on real vs synthetic traces.
#pragma once

#include <string>
#include <vector>

#include "downstream/ocsvm.hpp"
#include "net/trace.hpp"

namespace netshare::downstream {

enum class NetmlMode { kIat, kSize, kIatSize, kStats, kSampNum, kSampSize };

std::string netml_mode_name(NetmlMode mode);
std::vector<NetmlMode> all_netml_modes();

// Extracts per-flow feature rows. Only flows with packet count > 1 are
// represented (as in NetML); returns a 0-row matrix if there are none.
ml::Matrix netml_features(const net::PacketTrace& trace, NetmlMode mode);

// Fits an OCSVM on the trace's own features and returns the flagged anomaly
// ratio (the quantity compared between real and synthetic traces).
double netml_anomaly_ratio(const net::PacketTrace& trace, NetmlMode mode,
                           const OcSvmConfig& config, std::uint64_t seed);

}  // namespace netshare::downstream
