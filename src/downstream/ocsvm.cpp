#include "downstream/ocsvm.hpp"

#include <cmath>
#include <stdexcept>

namespace netshare::downstream {

void OneClassSvm::fit(const ml::Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("OneClassSvm::fit: empty");
  const std::size_t n = x.rows(), d = x.cols();

  // Column standardization.
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) mean_[j] += x(i, j);
  }
  for (auto& m : mean_) m /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const double c = x(i, j) - mean_[j];
      std_[j] += c * c;
    }
  }
  for (auto& s : std_) s = std::max(1e-9, std::sqrt(s / static_cast<double>(n)));

  w_.assign(d, 0.0);
  // Initialize w toward the data mean direction so <w, x> starts positive.
  for (std::size_t j = 0; j < d; ++j) w_[j] = 0.1;
  rho_ = 0.0;

  const double inv_nu_n = 1.0 / (config_.nu * static_cast<double>(n));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const double lr = config_.lr / (1.0 + 0.1 * epoch);
    const auto perm = rng_.permutation(n);
    for (std::size_t idx : perm) {
      std::vector<double> z(d);
      for (std::size_t j = 0; j < d; ++j) {
        z[j] = (x(idx, j) - mean_[j]) / std_[j];
      }
      double score = 0.0;
      for (std::size_t j = 0; j < d; ++j) score += w_[j] * z[j];

      // Subgradients of the primal (stochastic, per-sample).
      const bool margin_violated = score < rho_;
      for (std::size_t j = 0; j < d; ++j) {
        double g = w_[j] / static_cast<double>(n);  // regularizer share
        if (margin_violated) g -= inv_nu_n * z[j];
        w_[j] -= lr * g;
      }
      double g_rho = -1.0 / static_cast<double>(n);
      if (margin_violated) g_rho += inv_nu_n;
      rho_ -= lr * g_rho;
    }
  }
}

std::vector<double> OneClassSvm::standardize(std::span<const double> x) const {
  std::vector<double> z(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    z[j] = (x[j] - mean_[j]) / std_[j];
  }
  return z;
}

bool OneClassSvm::is_anomaly(std::span<const double> x) const {
  if (w_.empty()) throw std::logic_error("OneClassSvm: fit first");
  const auto z = standardize(x);
  double score = 0.0;
  for (std::size_t j = 0; j < z.size(); ++j) score += w_[j] * z[j];
  return score < rho_;
}

double OneClassSvm::anomaly_ratio(const ml::Matrix& x) const {
  if (x.rows() == 0) return 0.0;
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    flagged += is_anomaly(std::span<const double>(x.row_ptr(i), x.cols()));
  }
  return static_cast<double>(flagged) / static_cast<double>(x.rows());
}

}  // namespace netshare::downstream
