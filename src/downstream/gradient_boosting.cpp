#include "downstream/gradient_boosting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netshare::downstream {

void GradientBoosting::fit(const LabeledDataset& data) {
  if (data.size() == 0) throw std::invalid_argument("GradientBoosting: empty");
  num_classes_ = data.num_classes;
  ensemble_.clear();

  const std::size_t n = data.size();
  // Raw scores F_k(x_i), updated additively.
  std::vector<std::vector<double>> scores(num_classes_,
                                          std::vector<double>(n, 0.0));
  std::vector<double> probs(num_classes_);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    std::vector<std::unique_ptr<RegressionTree>> stage;
    stage.reserve(num_classes_);
    // Residuals per class: y_ik - softmax_k(F(x_i)).
    std::vector<std::vector<double>> residuals(
        num_classes_, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      double mx = scores[0][i];
      for (std::size_t k = 1; k < num_classes_; ++k) {
        mx = std::max(mx, scores[k][i]);
      }
      double sum = 0.0;
      for (std::size_t k = 0; k < num_classes_; ++k) {
        probs[k] = std::exp(scores[k][i] - mx);
        sum += probs[k];
      }
      for (std::size_t k = 0; k < num_classes_; ++k) {
        residuals[k][i] = (data.y[i] == k ? 1.0 : 0.0) - probs[k] / sum;
      }
    }
    for (std::size_t k = 0; k < num_classes_; ++k) {
      auto tree = std::make_unique<RegressionTree>(config_.tree,
                                                   rng_.engine()());
      tree->fit(data.x, residuals[k]);
      for (std::size_t i = 0; i < n; ++i) {
        std::span<const double> row(data.x.row_ptr(i), data.x.cols());
        scores[k][i] += config_.learning_rate * tree->predict(row);
      }
      stage.push_back(std::move(tree));
    }
    ensemble_.push_back(std::move(stage));
  }
}

std::vector<double> GradientBoosting::raw_scores(
    std::span<const double> x) const {
  std::vector<double> scores(num_classes_, 0.0);
  for (const auto& stage : ensemble_) {
    for (std::size_t k = 0; k < num_classes_; ++k) {
      scores[k] += config_.learning_rate * stage[k]->predict(x);
    }
  }
  return scores;
}

std::size_t GradientBoosting::predict(std::span<const double> x) const {
  if (ensemble_.empty()) throw std::logic_error("GradientBoosting: fit first");
  const auto scores = raw_scores(x);
  return static_cast<std::size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace netshare::downstream
