// MLP classifier (softmax cross-entropy, Adam).
#pragma once

#include <memory>

#include "downstream/classifier.hpp"
#include "ml/mlp.hpp"

namespace netshare::downstream {

struct MlpClassifierConfig {
  std::vector<std::size_t> hidden = {32, 32};
  int epochs = 30;
  std::size_t batch_size = 64;
  double lr = 1e-3;
};

class MlpClassifier : public Classifier {
 public:
  MlpClassifier(MlpClassifierConfig config, std::uint64_t seed)
      : config_(std::move(config)), rng_(seed) {}

  std::string name() const override { return "MLP"; }
  void fit(const LabeledDataset& data) override;
  std::size_t predict(std::span<const double> x) const override;

 private:
  MlpClassifierConfig config_;
  Rng rng_;
  std::unique_ptr<ml::Mlp> net_;
};

}  // namespace netshare::downstream
