#include "downstream/netml.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netshare::downstream {

namespace {

constexpr std::size_t kSampBins = 8;  // SAMP-NUM / SAMP-SIZE sub-intervals

// Five-number summary: mean, std, min, max, median.
std::vector<double> summary(std::vector<double> v) {
  if (v.empty()) return {0, 0, 0, 0, 0};
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  std::sort(v.begin(), v.end());
  return {mean, std::sqrt(var), v.front(), v.back(), v[v.size() / 2]};
}

struct FlowPackets {
  std::vector<double> times;
  std::vector<double> sizes;
};

std::vector<FlowPackets> multi_packet_flows(const net::PacketTrace& trace) {
  net::PacketTrace sorted = trace;
  sorted.sort_by_time();
  std::vector<FlowPackets> flows;
  for (const auto& [key, idx] : sorted.group_by_flow()) {
    (void)key;
    if (idx.size() < 2) continue;  // NetML: flows with > 1 packet only
    FlowPackets f;
    f.times.reserve(idx.size());
    f.sizes.reserve(idx.size());
    for (std::size_t k : idx) {
      f.times.push_back(sorted.packets[k].timestamp);
      f.sizes.push_back(static_cast<double>(sorted.packets[k].size));
    }
    flows.push_back(std::move(f));
  }
  return flows;
}

std::vector<double> flow_features(const FlowPackets& f, NetmlMode mode) {
  std::vector<double> iats;
  for (std::size_t i = 1; i < f.times.size(); ++i) {
    iats.push_back(f.times[i] - f.times[i - 1]);
  }
  const double duration = std::max(1e-9, f.times.back() - f.times.front());
  double bytes = 0.0;
  for (double s : f.sizes) bytes += s;

  switch (mode) {
    case NetmlMode::kIat:
      return summary(iats);
    case NetmlMode::kSize:
      return summary(f.sizes);
    case NetmlMode::kIatSize: {
      auto a = summary(iats);
      const auto b = summary(f.sizes);
      a.insert(a.end(), b.begin(), b.end());
      return a;
    }
    case NetmlMode::kStats: {
      const auto si = summary(iats);
      const auto ss = summary(f.sizes);
      return {duration,
              static_cast<double>(f.sizes.size()),
              bytes,
              ss[0],
              ss[1],
              si[0],
              si[1],
              static_cast<double>(f.sizes.size()) / duration,
              bytes / duration};
    }
    case NetmlMode::kSampNum:
    case NetmlMode::kSampSize: {
      std::vector<double> bins(kSampBins, 0.0);
      for (std::size_t i = 0; i < f.times.size(); ++i) {
        auto b = static_cast<std::size_t>((f.times[i] - f.times.front()) /
                                          duration * kSampBins);
        b = std::min(b, kSampBins - 1);
        bins[b] += mode == NetmlMode::kSampNum ? 1.0 : f.sizes[i];
      }
      return bins;
    }
  }
  return {};
}

}  // namespace

std::string netml_mode_name(NetmlMode mode) {
  switch (mode) {
    case NetmlMode::kIat:
      return "IAT";
    case NetmlMode::kSize:
      return "SIZE";
    case NetmlMode::kIatSize:
      return "IAT_SIZE";
    case NetmlMode::kStats:
      return "STATS";
    case NetmlMode::kSampNum:
      return "SAMP-NUM";
    case NetmlMode::kSampSize:
      return "SAMP-SIZE";
  }
  return "?";
}

std::vector<NetmlMode> all_netml_modes() {
  return {NetmlMode::kIat,   NetmlMode::kSize,    NetmlMode::kIatSize,
          NetmlMode::kStats, NetmlMode::kSampNum, NetmlMode::kSampSize};
}

ml::Matrix netml_features(const net::PacketTrace& trace, NetmlMode mode) {
  const auto flows = multi_packet_flows(trace);
  if (flows.empty()) return ml::Matrix(0, 1);
  const auto first = flow_features(flows[0], mode);
  ml::Matrix x(flows.size(), first.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto feats = flow_features(flows[i], mode);
    std::copy(feats.begin(), feats.end(), x.row_ptr(i));
  }
  return x;
}

double netml_anomaly_ratio(const net::PacketTrace& trace, NetmlMode mode,
                           const OcSvmConfig& config, std::uint64_t seed) {
  const ml::Matrix x = netml_features(trace, mode);
  if (x.rows() < 4) {
    throw std::invalid_argument(
        "netml_anomaly_ratio: too few multi-packet flows");
  }
  OneClassSvm svm(config, seed);
  svm.fit(x);
  return svm.anomaly_ratio(x);
}

}  // namespace netshare::downstream
