// Multiclass gradient boosting: per round, one shallow regression tree per
// class fit to the softmax negative gradient (y_ik - p_ik), with shrinkage.
#pragma once

#include <memory>
#include <vector>

#include "downstream/decision_tree.hpp"

namespace netshare::downstream {

struct GradientBoostingConfig {
  std::size_t rounds = 20;
  double learning_rate = 0.3;
  TreeConfig tree{3, 8, 0};  // shallow trees
};

class GradientBoosting : public Classifier {
 public:
  GradientBoosting(GradientBoostingConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  std::string name() const override { return "GB"; }
  void fit(const LabeledDataset& data) override;
  std::size_t predict(std::span<const double> x) const override;

 private:
  std::vector<double> raw_scores(std::span<const double> x) const;

  GradientBoostingConfig config_;
  Rng rng_;
  // ensemble_[round][class]
  std::vector<std::vector<std::unique_ptr<RegressionTree>>> ensemble_;
  std::size_t num_classes_ = 0;
};

}  // namespace netshare::downstream
