// One-class SVM (Schölkopf et al.) with a linear kernel, trained by
// (sub)gradient descent on the primal:
//   min  1/2 ||w||^2 - rho + 1/(nu n) sum max(0, rho - <w, x_i>)
// A point is anomalous iff <w, x> < rho. This is the default detector of
// the NetML anomaly-detection experiment (Fig. 14 / Table 4); the linear
// kernel is a documented simplification (DESIGN.md).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/matrix.hpp"

namespace netshare::downstream {

struct OcSvmConfig {
  double nu = 0.1;   // target anomaly fraction
  int epochs = 40;
  double lr = 0.05;
};

class OneClassSvm {
 public:
  OneClassSvm(OcSvmConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  // Features are standardized internally (per-column mean/std).
  void fit(const ml::Matrix& x);

  bool is_anomaly(std::span<const double> x) const;
  // Fraction of rows flagged anomalous.
  double anomaly_ratio(const ml::Matrix& x) const;

  double rho() const { return rho_; }

 private:
  std::vector<double> standardize(std::span<const double> x) const;

  OcSvmConfig config_;
  Rng rng_;
  std::vector<double> w_;
  double rho_ = 0.0;
  std::vector<double> mean_, std_;
};

}  // namespace netshare::downstream
