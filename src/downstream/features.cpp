#include "downstream/features.hpp"

#include <cmath>
#include <stdexcept>

namespace netshare::downstream {

namespace {
constexpr std::size_t kNumClasses = 12;  // none + 11 attack types
constexpr std::size_t kNumFeatures = 8;

void fill_row(const net::FlowRecord& r, double* out) {
  out[0] = static_cast<double>(r.key.dst_port) / 65535.0;
  out[1] = static_cast<double>(r.key.src_port) / 65535.0;
  out[2] = r.key.protocol == net::Protocol::kTcp ? 1.0 : 0.0;
  out[3] = r.key.protocol == net::Protocol::kUdp ? 1.0 : 0.0;
  out[4] = r.key.protocol == net::Protocol::kIcmp ? 1.0 : 0.0;
  out[5] = std::log1p(static_cast<double>(r.packets)) / 20.0;
  out[6] = std::log1p(static_cast<double>(r.bytes)) / 30.0;
  out[7] = std::log1p(r.duration * 1e3) / 20.0;
}
}  // namespace

LabeledDataset traffic_type_features(const net::FlowTrace& trace) {
  if (trace.empty()) {
    throw std::invalid_argument("traffic_type_features: empty trace");
  }
  LabeledDataset ds;
  ds.num_classes = kNumClasses;
  ds.x = ml::Matrix(trace.size(), kNumFeatures);
  ds.y.resize(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& r = trace.records[i];
    fill_row(r, ds.x.row_ptr(i));
    ds.y[i] = r.is_attack ? static_cast<std::size_t>(r.attack_type) : 0;
  }
  return ds;
}

std::pair<LabeledDataset, LabeledDataset> time_split(
    const net::FlowTrace& trace, double train_frac) {
  if (train_frac <= 0.0 || train_frac >= 1.0) {
    throw std::invalid_argument("time_split: train_frac out of (0,1)");
  }
  net::FlowTrace sorted = trace;
  sorted.sort_by_time();
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(sorted.size()) * train_frac);
  net::FlowTrace head, tail;
  head.records.assign(sorted.records.begin(),
                      sorted.records.begin() + static_cast<long>(cut));
  tail.records.assign(sorted.records.begin() + static_cast<long>(cut),
                      sorted.records.end());
  if (head.empty() || tail.empty()) {
    throw std::invalid_argument("time_split: degenerate split");
  }
  return {traffic_type_features(head), traffic_type_features(tail)};
}

}  // namespace netshare::downstream
