#include "downstream/random_forest.hpp"

#include <stdexcept>

namespace netshare::downstream {

void RandomForest::fit(const LabeledDataset& data) {
  if (data.size() == 0) throw std::invalid_argument("RandomForest: empty");
  num_classes_ = data.num_classes;
  trees_.clear();
  trees_.reserve(config_.num_trees);
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<std::size_t> rows(data.size());
    for (auto& r : rows) {
      r = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1));
    }
    auto tree = std::make_unique<DecisionTreeClassifier>(config_.tree,
                                                         rng_.engine()());
    tree->fit_subset(data, rows);
    trees_.push_back(std::move(tree));
  }
}

std::size_t RandomForest::predict(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: fit first");
  std::vector<std::size_t> votes(num_classes_, 0);
  for (const auto& tree : trees_) votes[tree->predict(x)]++;
  std::size_t best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return best;
}

}  // namespace netshare::downstream
