#include "downstream/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace netshare::downstream {

double Classifier::accuracy(const LabeledDataset& data) const {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::span<const double> row(data.x.row_ptr(i), data.x.cols());
    correct += predict(row) == data.y[i];
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

namespace {

// Candidate features at a node: all, or a random subset of max_features.
std::vector<std::size_t> candidate_features(std::size_t num_features,
                                            std::size_t max_features,
                                            Rng& rng) {
  std::vector<std::size_t> feats(num_features);
  std::iota(feats.begin(), feats.end(), std::size_t{0});
  if (max_features == 0 || max_features >= num_features) return feats;
  for (std::size_t i = 0; i < max_features; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(num_features) - 1));
    std::swap(feats[i], feats[j]);
  }
  feats.resize(max_features);
  return feats;
}

// Finds the best threshold split of `rows` on `feature`, minimizing the
// weighted child impurity computed by `impurity(rows_subset)`.
struct SplitResult {
  bool found = false;
  std::size_t feature = 0;
  double threshold = 0.0;
  double score = 1e300;
};

}  // namespace

// ---------------------------------------------------------------------------
// DecisionTreeClassifier

void DecisionTreeClassifier::fit(const LabeledDataset& data) {
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  fit_subset(data, rows);
}

void DecisionTreeClassifier::fit_subset(const LabeledDataset& data,
                                        const std::vector<std::size_t>& rows) {
  if (rows.empty()) throw std::invalid_argument("DecisionTree: no rows");
  num_classes_ = data.num_classes;
  nodes_.clear();

  // Iterative recursion via an explicit stack of (node index, rows, depth).
  struct Work {
    int node;
    std::vector<std::size_t> rows;
    std::size_t depth;
  };
  nodes_.push_back({});
  std::vector<Work> stack{{0, rows, 0}};

  auto majority = [&](const std::vector<std::size_t>& rs) {
    std::vector<std::size_t> counts(num_classes_, 0);
    for (std::size_t r : rs) counts[data.y[r]]++;
    return static_cast<std::size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
  };
  auto gini = [&](const std::vector<std::size_t>& counts, double n) {
    if (n <= 0) return 0.0;
    double g = 1.0;
    for (std::size_t c : counts) {
      const double p = static_cast<double>(c) / n;
      g -= p * p;
    }
    return g;
  };

  while (!stack.empty()) {
    Work w = std::move(stack.back());
    stack.pop_back();
    nodes_[static_cast<std::size_t>(w.node)].label = majority(w.rows);

    const bool pure = std::all_of(w.rows.begin(), w.rows.end(),
                                  [&](std::size_t r) {
                                    return data.y[r] == data.y[w.rows[0]];
                                  });
    if (pure || w.depth >= config_.max_depth ||
        w.rows.size() < config_.min_samples_split) {
      continue;
    }

    // Best split across candidate features via sorted sweep.
    SplitResult best;
    const auto feats =
        candidate_features(data.x.cols(), config_.max_features, rng_);
    for (std::size_t f : feats) {
      std::vector<std::size_t> order = w.rows;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return data.x(a, f) < data.x(b, f);
      });
      std::vector<std::size_t> left_counts(num_classes_, 0);
      std::vector<std::size_t> right_counts(num_classes_, 0);
      for (std::size_t r : order) right_counts[data.y[r]]++;
      const double n = static_cast<double>(order.size());
      for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        const std::size_t cls = data.y[order[i]];
        left_counts[cls]++;
        right_counts[cls]--;
        const double xv = data.x(order[i], f);
        const double xn = data.x(order[i + 1], f);
        if (xn <= xv) continue;  // no threshold between equal values
        const double nl = static_cast<double>(i + 1);
        const double nr = n - nl;
        const double score =
            (nl * gini(left_counts, nl) + nr * gini(right_counts, nr)) / n;
        if (score < best.score) {
          best = {true, f, 0.5 * (xv + xn), score};
        }
      }
    }
    if (!best.found) continue;

    std::vector<std::size_t> left_rows, right_rows;
    for (std::size_t r : w.rows) {
      (data.x(r, best.feature) <= best.threshold ? left_rows : right_rows)
          .push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) continue;

    // Allocate children first: push_back may reallocate the node pool, so
    // never hold a reference across it.
    const int left = static_cast<int>(nodes_.size());
    nodes_.push_back({});
    const int right = static_cast<int>(nodes_.size());
    nodes_.push_back({});
    TreeNode& parent = nodes_[static_cast<std::size_t>(w.node)];
    parent.leaf = false;
    parent.feature = best.feature;
    parent.threshold = best.threshold;
    parent.left = left;
    parent.right = right;
    stack.push_back({left, std::move(left_rows), w.depth + 1});
    stack.push_back({right, std::move(right_rows), w.depth + 1});
  }
}

std::size_t DecisionTreeClassifier::predict(std::span<const double> x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: fit first");
  int at = 0;
  for (;;) {
    const TreeNode& node = nodes_[static_cast<std::size_t>(at)];
    if (node.leaf) return node.label;
    at = x[node.feature] <= node.threshold ? node.left : node.right;
  }
}

// ---------------------------------------------------------------------------
// RegressionTree

void RegressionTree::fit(const ml::Matrix& x,
                         const std::vector<double>& targets) {
  if (x.rows() == 0 || x.rows() != targets.size()) {
    throw std::invalid_argument("RegressionTree::fit: bad shapes");
  }
  nodes_.clear();
  struct Work {
    int node;
    std::vector<std::size_t> rows;
    std::size_t depth;
  };
  std::vector<std::size_t> all(x.rows());
  std::iota(all.begin(), all.end(), std::size_t{0});
  nodes_.push_back({});
  std::vector<Work> stack{{0, std::move(all), 0}};

  auto mean_of = [&](const std::vector<std::size_t>& rs) {
    double s = 0.0;
    for (std::size_t r : rs) s += targets[r];
    return rs.empty() ? 0.0 : s / static_cast<double>(rs.size());
  };

  while (!stack.empty()) {
    Work w = std::move(stack.back());
    stack.pop_back();
    nodes_[static_cast<std::size_t>(w.node)].value = mean_of(w.rows);
    if (w.depth >= config_.max_depth ||
        w.rows.size() < config_.min_samples_split) {
      continue;
    }

    // Best variance-reducing split (sorted sweep with running sums).
    SplitResult best;
    const auto feats = candidate_features(x.cols(), config_.max_features, rng_);
    for (std::size_t f : feats) {
      std::vector<std::size_t> order = w.rows;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return x(a, f) < x(b, f);
      });
      double right_sum = 0.0, right_sq = 0.0;
      for (std::size_t r : order) {
        right_sum += targets[r];
        right_sq += targets[r] * targets[r];
      }
      double left_sum = 0.0, left_sq = 0.0;
      const double n = static_cast<double>(order.size());
      for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        const double t = targets[order[i]];
        left_sum += t;
        left_sq += t * t;
        right_sum -= t;
        right_sq -= t * t;
        const double xv = x(order[i], f);
        const double xn = x(order[i + 1], f);
        if (xn <= xv) continue;
        const double nl = static_cast<double>(i + 1);
        const double nr = n - nl;
        const double sse = (left_sq - left_sum * left_sum / nl) +
                           (right_sq - right_sum * right_sum / nr);
        if (sse < best.score) {
          best = {true, f, 0.5 * (xv + xn), sse};
        }
      }
    }
    if (!best.found) continue;

    std::vector<std::size_t> left_rows, right_rows;
    for (std::size_t r : w.rows) {
      (x(r, best.feature) <= best.threshold ? left_rows : right_rows)
          .push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) continue;

    // Allocate children first: push_back may reallocate the node pool, so
    // never hold a reference across it.
    const int left = static_cast<int>(nodes_.size());
    nodes_.push_back({});
    const int right = static_cast<int>(nodes_.size());
    nodes_.push_back({});
    TreeNode& parent = nodes_[static_cast<std::size_t>(w.node)];
    parent.leaf = false;
    parent.feature = best.feature;
    parent.threshold = best.threshold;
    parent.left = left;
    parent.right = right;
    stack.push_back({left, std::move(left_rows), w.depth + 1});
    stack.push_back({right, std::move(right_rows), w.depth + 1});
  }
}

double RegressionTree::predict(std::span<const double> x) const {
  if (nodes_.empty()) throw std::logic_error("RegressionTree: fit first");
  int at = 0;
  for (;;) {
    const TreeNode& node = nodes_[static_cast<std::size_t>(at)];
    if (node.leaf) return node.value;
    at = x[node.feature] <= node.threshold ? node.left : node.right;
  }
}

}  // namespace netshare::downstream
