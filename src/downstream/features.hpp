// Feature extraction for the downstream traffic-type prediction task
// (Fig. 11/12): predict a NetFlow record's type (benign / attack type) from
// port number, protocol, bytes/flow, packets/flow, and flow duration.
#pragma once

#include <utility>
#include <vector>

#include "ml/matrix.hpp"
#include "net/trace.hpp"

namespace netshare::downstream {

struct LabeledDataset {
  ml::Matrix x;                 // N x F
  std::vector<std::size_t> y;   // class per row
  std::size_t num_classes = 0;

  std::size_t size() const { return x.rows(); }
};

// One row per flow record; label = attack class (0 = benign). Classes use
// the fixed 12-way attack alphabet so real/synthetic datasets align.
LabeledDataset traffic_type_features(const net::FlowTrace& trace);

// The paper's evaluation protocol: sort by timestamp, earlier `train_frac`
// trains, the rest tests.
std::pair<LabeledDataset, LabeledDataset> time_split(
    const net::FlowTrace& trace, double train_frac);

}  // namespace netshare::downstream
