// Random Forest: bootstrap-bagged gini trees with per-split feature
// subsampling; majority vote.
#pragma once

#include <memory>
#include <vector>

#include "downstream/decision_tree.hpp"

namespace netshare::downstream {

struct RandomForestConfig {
  std::size_t num_trees = 15;
  TreeConfig tree{8, 8, 3};  // max_features = 3 for feature bagging
};

class RandomForest : public Classifier {
 public:
  RandomForest(RandomForestConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  std::string name() const override { return "RF"; }
  void fit(const LabeledDataset& data) override;
  std::size_t predict(std::span<const double> x) const override;

 private:
  RandomForestConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<DecisionTreeClassifier>> trees_;
  std::size_t num_classes_ = 0;
};

}  // namespace netshare::downstream
