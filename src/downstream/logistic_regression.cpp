#include "downstream/logistic_regression.hpp"

#include <stdexcept>

#include "ml/loss.hpp"
#include "ml/optim.hpp"

namespace netshare::downstream {

void LogisticRegression::fit(const LabeledDataset& data) {
  if (data.size() == 0) throw std::invalid_argument("LogisticRegression: empty");
  linear_ = std::make_unique<ml::Linear>(data.x.cols(), data.num_classes, rng_);
  ml::Adam opt(linear_->parameters(), config_.lr);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto perm = rng_.permutation(data.size());
    for (std::size_t b = 0; b < perm.size(); b += config_.batch_size) {
      const std::size_t bs = std::min(config_.batch_size, perm.size() - b);
      ml::Matrix x(bs, data.x.cols());
      std::vector<std::size_t> y(bs);
      for (std::size_t i = 0; i < bs; ++i) {
        const double* src = data.x.row_ptr(perm[b + i]);
        std::copy(src, src + data.x.cols(), x.row_ptr(i));
        y[i] = data.y[perm[b + i]];
      }
      const ml::Matrix logits = linear_->forward(x);
      ml::Matrix grad;
      ml::softmax_cross_entropy_loss(logits, y, &grad);
      linear_->zero_grad();
      linear_->backward(grad);
      opt.step();
    }
  }
}

std::size_t LogisticRegression::predict(std::span<const double> x) const {
  if (!linear_) throw std::logic_error("LogisticRegression: fit first");
  ml::Matrix row(1, x.size());
  std::copy(x.begin(), x.end(), row.row_ptr(0));
  const ml::Matrix logits =
      const_cast<ml::Linear&>(*linear_).forward(row);
  std::size_t best = 0;
  for (std::size_t j = 1; j < logits.cols(); ++j) {
    if (logits(0, j) > logits(0, best)) best = j;
  }
  return best;
}

}  // namespace netshare::downstream
