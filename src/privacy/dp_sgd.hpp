// DP-SGD: per-example gradient clipping + Gaussian noise (Abadi et al. 2016),
// the mechanism the paper uses for differentially-private GAN training (C4,
// Insight 4).
//
// Usage per batch:
//   for each example: zero grads, forward/backward one example,
//                     trainer.accumulate_example();
//   trainer.finalize_batch(batch_size, rng);   // grads now noisy average
//   optimizer.step();
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "ml/layers.hpp"

namespace netshare::privacy {

struct DpSgdConfig {
  double clip_norm = 1.0;        // per-example L2 clip C
  double noise_multiplier = 1.0; // sigma; noise stddev is sigma * C
};

class DpSgdAggregator {
 public:
  DpSgdAggregator(std::vector<ml::Parameter*> params, DpSgdConfig config);

  // Clips the currently-accumulated (single-example) gradients to clip_norm
  // and adds them to the internal sum; zeroes the parameter grads.
  void accumulate_example();

  // Writes (sum + N(0, sigma^2 C^2 I)) / batch_size into the parameter grads
  // and resets the sum.
  void finalize_batch(std::size_t batch_size, Rng& rng);

  const DpSgdConfig& config() const { return config_; }

 private:
  std::vector<ml::Parameter*> params_;
  DpSgdConfig config_;
  std::vector<ml::Matrix> sum_;
};

}  // namespace netshare::privacy
