// Rényi-DP accountant for the subsampled Gaussian mechanism.
//
// Uses the standard small-sampling-rate RDP bound for DP-SGD
// (eps_RDP(alpha) ~= steps * q^2 * alpha / sigma^2, cf. Abadi et al. /
// Mironov) and converts to (eps, delta)-DP by minimizing over orders. This
// matches the accounting style of tensorflow-privacy closely enough to
// reproduce the paper's epsilon sweeps (Fig. 5, Table 5).
#pragma once

#include <cstddef>

namespace netshare::privacy {

struct DpBudget {
  double epsilon = 0.0;
  double best_order = 0.0;  // the RDP order achieving the minimum
};

// epsilon consumed after `steps` DP-SGD iterations with sampling rate q and
// noise multiplier sigma, at the given delta. q in (0,1], sigma > 0.
DpBudget compute_epsilon(double q, double sigma, std::size_t steps,
                         double delta);

// Smallest noise multiplier that keeps epsilon(q, sigma, steps, delta) <=
// target_epsilon (binary search; returns +inf-like large sigma if even huge
// noise cannot reach it).
double noise_multiplier_for_epsilon(double target_epsilon, double q,
                                    std::size_t steps, double delta);

}  // namespace netshare::privacy
