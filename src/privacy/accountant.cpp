#include "privacy/accountant.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace netshare::privacy {

namespace {
// RDP of one subsampled Gaussian step at order alpha (small-q bound).
double rdp_step(double q, double sigma, double alpha) {
  return q * q * alpha / (sigma * sigma);
}
}  // namespace

DpBudget compute_epsilon(double q, double sigma, std::size_t steps,
                         double delta) {
  if (q <= 0.0 || q > 1.0) throw std::invalid_argument("compute_epsilon: q");
  if (sigma <= 0.0) throw std::invalid_argument("compute_epsilon: sigma");
  if (delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("compute_epsilon: delta");
  }
  DpBudget best;
  best.epsilon = std::numeric_limits<double>::infinity();
  const double log_inv_delta = std::log(1.0 / delta);
  for (double alpha = 1.25; alpha <= 512.0; alpha *= 1.1) {
    const double rdp = static_cast<double>(steps) * rdp_step(q, sigma, alpha);
    const double eps = rdp + log_inv_delta / (alpha - 1.0);
    if (eps < best.epsilon) {
      best.epsilon = eps;
      best.best_order = alpha;
    }
  }
  return best;
}

double noise_multiplier_for_epsilon(double target_epsilon, double q,
                                    std::size_t steps, double delta) {
  if (target_epsilon <= 0.0) {
    throw std::invalid_argument("noise_multiplier_for_epsilon: target");
  }
  double lo = 1e-3, hi = 1e6;
  if (compute_epsilon(q, hi, steps, delta).epsilon > target_epsilon) {
    return hi;  // even enormous noise cannot reach the target
  }
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (compute_epsilon(q, mid, steps, delta).epsilon > target_epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace netshare::privacy
