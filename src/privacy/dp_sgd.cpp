#include "privacy/dp_sgd.hpp"

#include <cmath>

namespace netshare::privacy {

DpSgdAggregator::DpSgdAggregator(std::vector<ml::Parameter*> params,
                                 DpSgdConfig config)
    : params_(std::move(params)), config_(config) {
  sum_.reserve(params_.size());
  for (ml::Parameter* p : params_) {
    sum_.push_back(ml::Matrix::zeros(p->value.rows(), p->value.cols()));
  }
}

void DpSgdAggregator::accumulate_example() {
  double sq = 0.0;
  for (const ml::Parameter* p : params_) {
    for (double g : p->grad.data()) sq += g * g;
  }
  const double norm = std::sqrt(sq);
  const double scale =
      norm > config_.clip_norm && norm > 0.0 ? config_.clip_norm / norm : 1.0;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& acc = sum_[i].data();
    auto& g = params_[i]->grad.data();
    for (std::size_t j = 0; j < acc.size(); ++j) {
      acc[j] += g[j] * scale;
      g[j] = 0.0;
    }
  }
}

void DpSgdAggregator::finalize_batch(std::size_t batch_size, Rng& rng) {
  const double stddev = config_.noise_multiplier * config_.clip_norm;
  const double inv_b = 1.0 / static_cast<double>(batch_size);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& acc = sum_[i].data();
    auto& g = params_[i]->grad.data();
    for (std::size_t j = 0; j < acc.size(); ++j) {
      g[j] = (acc[j] + rng.normal(0.0, stddev)) * inv_b;
      acc[j] = 0.0;
    }
  }
}

}  // namespace netshare::privacy
