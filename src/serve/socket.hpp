// Local-socket transport for the generation service: a poll-based event
// loop accepting AF_UNIX stream connections, splitting each byte stream
// into frames (protocol.hpp), and driving Service / ModelRegistry. Reply
// frames for a generate job are written from the sampling worker threads as
// each chunk part streams out — a per-connection write lock keeps frames
// whole, and a closed flag turns writes to a dead peer into no-ops (the job
// still completes; its bytes are simply dropped).
//
// SocketClient is the matching blocking client used by tests and the
// command-line tools; it speaks one request at a time per connection,
// though the wire protocol itself is pipelined (request_id echo).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/service.hpp"

namespace netshare::serve {

class SocketServer {
 public:
  // Binds `socket_path` (unlinking any stale file) and starts the event
  // loop. Throws std::runtime_error when the address cannot be bound.
  SocketServer(Service& service, ModelRegistry& registry,
               std::string socket_path);
  // stop()s if still running.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Closes the listener and every connection, joins the event loop and any
  // in-flight publish threads, and unlinks the socket file. In-flight
  // generate jobs keep running in the Service; their replies are dropped.
  void stop();

  const std::string& path() const { return path_; }

 private:
  struct Conn;

  void event_loop();
  void handle_frame(const std::shared_ptr<Conn>& conn,
                    const std::vector<std::uint8_t>& body);

  Service* service_;
  ModelRegistry* registry_;
  std::string path_;
  int listen_fd_ = -1;
  int wake_fd_[2] = {-1, -1};  // self-pipe: stop() wakes the poll loop
  std::thread loop_;
  bool stopped_ = false;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> publish_threads_;  // joined in stop()
};

// Blocking client over the wire — the socket-transport twin of ServeClient.
class SocketClient {
 public:
  // Connects to a SocketServer's path; throws std::runtime_error on failure.
  explicit SocketClient(const std::string& socket_path);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  // Sends a generate request and blocks until its kDone/kError, merging the
  // streamed chunk parts exactly like ServeClient. Throws
  // std::runtime_error when the connection is lost mid-exchange.
  ClientResult generate(const std::string& model_id, const std::string& tenant,
                        std::size_t n, std::uint64_t seed,
                        std::uint64_t deadline_ms = 0);

  // generate() with jittered-exponential-backoff retry on transient sheds
  // AND on transport loss: a dead connection is dropped and re-dialed on
  // the next attempt (resubmission is idempotent — service output is a pure
  // function of (snapshot, config, seed)). Never throws on connection loss;
  // an exhausted budget surfaces the last failure as a ClientResult.
  ClientResult generate_with_retry(const std::string& model_id,
                                   const std::string& tenant, std::size_t n,
                                   std::uint64_t seed,
                                   const RetryPolicy& policy,
                                   std::uint64_t deadline_ms = 0);

  // Publishes a snapshot directory; ok carries the new version in
  // model_version. A rejected publish surfaces the typed snapshot-corruption
  // code in `code`.
  ClientResult publish(const std::string& model_id,
                       const std::string& snapshot_dir);

  // Scrapes the ops surface; returns the stats JSON object.
  std::string stats();

 private:
  void send_all(const std::vector<std::uint8_t>& bytes);
  std::vector<std::uint8_t> read_frame();  // blocks; throws on EOF
  void disconnect();  // close + reset framing state
  bool reconnect();   // re-dial path_; false when the daemon is unreachable

  std::string path_;
  int fd_ = -1;
  FrameReader reader_;
  std::uint32_t next_request_id_ = 1;
};

}  // namespace netshare::serve
