#include "serve/chaos.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.hpp"

namespace netshare::serve {

namespace {

// Decision sites, each with its own draw counter so one site's traffic
// never perturbs another's schedule.
enum Site : std::uint32_t {
  kSiteSendShort = 0,
  kSiteSendDisconnect = 1,
  kSiteSendStall = 2,
  kSiteSendSplit = 3,
  kSiteRegistry = 4,
  kSiteWorker = 5,
  kSiteCount = 6,
};

ChaosPlan g_plan;
std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_counters[kSiteCount];

// The Nth draw at `site` is a pure function of (plan.seed, site, N).
double draw(Site site) {
  const std::uint64_t n =
      g_counters[site].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t bits = mix_seed(
      g_plan.seed ^ (0x9e3779b97f4a7c15ull * (site + 1)), n);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool roll(Site site, double p) {
  if (p <= 0.0) return false;
  return draw(site) < p;
}

}  // namespace

void set_chaos_plan(const ChaosPlan& plan) {
  g_plan = plan;
  for (auto& c : g_counters) c.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void clear_chaos_plan() {
  g_armed.store(false, std::memory_order_release);
  g_plan = ChaosPlan{};
}

bool chaos_armed() { return g_armed.load(std::memory_order_acquire); }

ChaosSendFault chaos_send_fault(std::size_t len) {
  ChaosSendFault fault;
  if (!chaos_armed() || len == 0) return fault;
  if (roll(kSiteSendStall, g_plan.p_send_stall)) {
    fault.stall_ms = g_plan.send_stall_ms;
  }
  if (roll(kSiteSendDisconnect, g_plan.p_send_disconnect)) {
    fault.disconnect = true;
    // Shut down mid-frame: leave a strict prefix behind so the peer's
    // FrameReader is left holding a partial frame, not a clean boundary.
    fault.fragment_at = 1 + static_cast<std::size_t>(
        draw(kSiteSendSplit) * static_cast<double>(len - 1));
    return fault;
  }
  if (roll(kSiteSendShort, g_plan.p_send_short_write)) {
    fault.fragment_at = 1 + static_cast<std::size_t>(
        draw(kSiteSendSplit) * static_cast<double>(len - 1));
  }
  return fault;
}

bool chaos_registry_load_fails() {
  if (!chaos_armed()) return false;
  return roll(kSiteRegistry, g_plan.p_registry_load_fail);
}

void chaos_worker_chunk(std::size_t chunk, std::size_t job_index) {
  if (!chaos_armed()) return;
  if (g_plan.worker_hook) g_plan.worker_hook(chunk, job_index);
  if (g_plan.worker_delay_ms > 0 && roll(kSiteWorker, g_plan.p_worker_delay)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(g_plan.worker_delay_ms));
  }
}

}  // namespace netshare::serve
