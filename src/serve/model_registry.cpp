#include "serve/model_registry.hpp"

#include <stdexcept>
#include <utility>

#include "ml/serialize.hpp"
#include "serve/chaos.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::serve {

namespace {

// FNV-1a over the generation-relevant shape of a loaded model. Two jobs may
// be coalesced only if their models agree on this fingerprint; version is
// mixed in so a hot-swap always changes the coalescing key.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_model_shape(const core::NetShareConfig& config,
                               const gan::TimeSeriesSpec& spec,
                               std::size_t num_chunks, std::uint64_t version) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, config.max_seq_len);
  h = fnv1a(h, config.use_ip2vec_ports ? 1 : 0);
  h = fnv1a(h, config.log_transform ? 1 : 0);
  h = fnv1a(h, config.use_flow_tags ? 1 : 0);
  h = fnv1a(h, config.ip2vec_dim);
  h = fnv1a(h, config.num_chunks);
  h = fnv1a(h, config.seed);
  h = fnv1a(h, spec.attribute_dim());
  h = fnv1a(h, spec.feature_dim());
  h = fnv1a(h, spec.max_len);
  h = fnv1a(h, num_chunks);
  h = fnv1a(h, version);
  return h;
}

}  // namespace

LoadedModel::LoadedModel(const ModelSpec& spec, const std::string& snapshot_dir,
                         std::uint64_t version)
    : config_(spec.config),
      ip2vec_(spec.ip2vec),
      encoder_(config_, ip2vec_.get()),
      version_(version) {
  if (config_.use_ip2vec_ports && !ip2vec_) {
    throw std::invalid_argument(
        "LoadedModel: use_ip2vec_ports requires an IP2Vec model in the spec");
  }
  if (spec.reference.records.empty()) {
    throw std::invalid_argument("LoadedModel: empty reference trace");
  }
  // Same deterministic setup as NetShare::fit on the reference trace: the
  // encoder learns normalizers + the chunk grid, the plan sizes the trainer.
  encoder_.fit(spec.reference);
  const core::FlowEncodePlan plan = encoder_.plan(spec.reference);
  const std::size_t M = encoder_.chunks().size();
  std::vector<std::size_t> samples(M);
  for (std::size_t c = 0; c < M; ++c) samples[c] = plan.chunk_samples(c);
  trainer_ = std::make_unique<core::ChunkedTrainer>(encoder_.spec(), config_);
  trainer_->begin_fit(samples);
  // All-or-nothing: any missing/corrupt/mis-shaped chunk file throws here,
  // before the registry ever sees this object — the previously published
  // version keeps serving.
  for (std::size_t c = 0; c < M; ++c) {
    if (samples[c] == 0) continue;  // empty chunk trains no model
    const std::string path =
        snapshot_dir + "/chunk_" + std::to_string(c) + ".ckpt";
    trainer_->restore_chunk(c, ml::load_snapshot_file(path));
  }
  config_hash_ = hash_model_shape(config_, encoder_.spec(), M, version_);
}

std::vector<std::size_t> LoadedModel::record_targets(std::size_t n) const {
  return core::chunk_record_targets(encoder_.chunks(), n);
}

void LoadedModel::sample_part(std::size_t c, std::size_t target,
                              std::uint64_t seed, net::FlowTrace& out) {
  out = net::FlowTrace{};
  if (target == 0 || !trainer_->has_model(c)) return;
  core::sample_flow_chunk_part(encoder_.chunks(), c, target, seed, config_,
                               *trainer_, encoder_, out);
  core::export_flow_chunk_part(target, out);
}

net::FlowTrace LoadedModel::generate(std::size_t n, std::uint64_t seed) {
  const std::vector<std::size_t> targets = record_targets(n);
  std::vector<net::FlowTrace> parts(num_chunks());
  for (std::size_t c = 0; c < parts.size(); ++c) {
    sample_part(c, targets[c], seed, parts[c]);
  }
  return core::merge_flow_chunk_parts(parts, n);
}

void ModelRegistry::define(const std::string& model_id, ModelSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[model_id].spec = std::move(spec);
}

std::uint64_t ModelRegistry::publish(const std::string& model_id,
                                     const std::string& snapshot_dir) {
  ModelSpec spec;
  std::uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(model_id);
    if (it == entries_.end()) {
      throw std::invalid_argument("ModelRegistry::publish: undefined model '" +
                                  model_id + "'");
    }
    spec = it->second.spec;  // shallow shares ip2vec; copies config + trace
    version = next_version_++;
  }
  // The expensive build (encoder fit + CRC-validated chunk restores) runs
  // outside the lock, so serving never stalls behind a publish.
  // Chaos injection (DESIGN.md §14): a planned load fault surfaces exactly
  // like a disk-level failure — typed, before anything installs, so the
  // previously published version keeps serving.
  if (chaos_registry_load_fails()) {
    throw ml::SnapshotError(ml::SnapshotError::Kind::kIo,
                            "chaos: injected snapshot load failure for '" +
                                model_id + "'");
  }
  auto model = std::make_shared<LoadedModel>(spec, snapshot_dir, version);
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[model_id];
    // Concurrent publishes finish building in arbitrary order; install
    // strictly by version so a slow older build can never roll the registry
    // back below a version already serving. A superseded build is simply
    // discarded — its caller still gets its version, the newer one serves.
    if (!entry.current || entry.current->version() < version) {
      entry.current = std::move(model);  // the atomic hot-swap
    } else {
      TELEM_COUNT("serve.registry.stale_publishes_discarded");
    }
  }
  TELEM_COUNT("serve.registry.publishes");
  return version;
}

std::shared_ptr<LoadedModel> ModelRegistry::acquire(
    const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(model_id);
  return it == entries_.end() ? nullptr : it->second.current;
}

std::size_t ModelRegistry::models_loaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, entry] : entries_) n += entry.current ? 1 : 0;
  return n;
}

std::vector<std::string> ModelRegistry::model_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

}  // namespace netshare::serve
