#include "serve/service.hpp"

#include <algorithm>
#include <sstream>

#include "common/clock.hpp"
#include "serve/chaos.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::serve {

namespace {

ServiceConfig sanitize(ServiceConfig cfg) {
  cfg.workers = std::max<std::size_t>(1, cfg.workers);
  cfg.queue_capacity = std::max<std::size_t>(1, cfg.queue_capacity);
  cfg.max_coalesce = std::max<std::size_t>(1, cfg.max_coalesce);
  cfg.tenant_inflight_cap = std::max<std::size_t>(1, cfg.tenant_inflight_cap);
  cfg.drr_quantum = std::max<std::size_t>(1, cfg.drr_quantum);
  // The cap doubles as the frame-size guarantee: a job's largest chunk part
  // is at most n_flows records, so no kChunk reply can exceed kMaxFrame.
  cfg.max_flows_per_job = std::max<std::size_t>(
      1, std::min(cfg.max_flows_per_job, kMaxChunkRecords));
  cfg.watchdog_poll_ms = std::max<std::uint64_t>(10, cfg.watchdog_poll_ms);
  // Anything below one header + a small request is unusable; 0 keeps the
  // protocol default (FrameReader maps 0 to kMaxFrame).
  if (cfg.max_frame_bytes != 0) {
    cfg.max_frame_bytes = std::max<std::size_t>(512, cfg.max_frame_bytes);
  }
  return cfg;
}

std::size_t latency_bucket(double ms) {
  std::size_t b = 0;
  while (b < kLatencyBuckets - 1 && ms > kLatencyEdgesMs[b]) ++b;
  return b;
}

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out << '\\' << ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out << ' ';  // control bytes have no business in tenant/model names
    } else {
      out << ch;
    }
  }
  out << '"';
}

}  // namespace

double latency_percentile_ms(const std::vector<std::uint64_t>& hist,
                             double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : hist) total += c;
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < hist.size(); ++b) {
    seen += hist[b];
    if (seen > rank) {
      return kLatencyEdgesMs[std::min<std::size_t>(b, kLatencyBuckets - 2)];
    }
  }
  return kLatencyEdgesMs[kLatencyBuckets - 2];
}

std::string to_json(const ServiceStatsSnapshot& stats) {
  std::ostringstream out;
  out << "{\"draining\":" << (stats.draining ? "true" : "false")
      << ",\"queue_depth\":" << stats.queue_depth
      << ",\"running\":" << stats.running
      << ",\"models_loaded\":" << stats.models_loaded
      << ",\"submitted\":" << stats.submitted
      << ",\"completed\":" << stats.completed
      << ",\"shed_overloaded\":" << stats.shed_overloaded
      << ",\"shed_draining\":" << stats.shed_draining
      << ",\"shed_rate_limited\":" << stats.shed_rate_limited
      << ",\"rejected_other\":" << stats.rejected_other
      << ",\"errors\":" << stats.errors
      << ",\"deadline_exceeded\":" << stats.deadline_exceeded
      << ",\"batches\":" << stats.batches
      << ",\"coalesced_jobs\":" << stats.coalesced_jobs
      << ",\"health\":{\"watchdog_stalls\":" << stats.watchdog_stalls
      << ",\"progress_age_ms\":" << stats.progress_age_ms
      << ",\"stalled\":" << (stats.stalled ? "true" : "false") << "}"
      << ",\"tenants\":[";
  for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
    const TenantStatsSnapshot& t = stats.tenants[i];
    if (i) out << ',';
    out << "{\"tenant\":";
    append_json_string(out, t.tenant);
    out << ",\"submitted\":" << t.submitted << ",\"completed\":" << t.completed
        << ",\"shed\":" << t.shed << ",\"records\":" << t.records
        << ",\"latency_p50_ms\":" << latency_percentile_ms(t.latency_hist, 0.5)
        << ",\"latency_p99_ms\":" << latency_percentile_ms(t.latency_hist, 0.99)
        << ",\"latency_mean_ms\":"
        << (t.latency_count
                ? t.latency_sum_ms / static_cast<double>(t.latency_count)
                : 0.0)
        << ",\"latency_hist\":[";
    for (std::size_t b = 0; b < t.latency_hist.size(); ++b) {
      if (b) out << ',';
      out << t.latency_hist[b];
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

Service::Service(ModelRegistry& registry, ServiceConfig config)
    : registry_(registry),
      config_(sanitize(config)),
      rate_limiter_(config_.rate_limit) {
  watchdog_progress_ms_ = mono_now_ms();
  pool_ = std::make_unique<ThreadPool>(config_.workers);
  scheduler_ = std::thread([this] { scheduler_loop(); });
  if (config_.watchdog_stall_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Service::~Service() {
  begin_drain();
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  scheduler_.join();
  if (watchdog_.joinable()) watchdog_.join();
  pool_.reset();  // joins sampling workers (queue already empty after drain)
}

SubmitResult Service::submit(GenerateJob job, JobCallbacks callbacks) {
  // Resolve the model handle before taking the service lock (the registry
  // has its own); this is the hot-swap pin — the job keeps this version.
  std::shared_ptr<LoadedModel> model;
  if (!job.model_id.empty()) model = registry_.acquire(job.model_id);

  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  // Admission runs before any per-tenant state is created: tenant names are
  // wire-supplied, and each tenants_/rr_order_ entry costs memory plus an
  // O(T) scheduler-scan slot forever, so only accepted jobs may register
  // one. Rejections still count against a tenant that already exists.
  auto existing = tenants_.find(job.tenant);
  Tenant* known = existing == tenants_.end() ? nullptr : &existing->second;
  if (known) ++known->submitted;
  const auto shed = [&](std::uint64_t& counter, ErrorCode code,
                        std::string message) {
    if (known) ++known->shed;
    ++counter;
    return SubmitResult{false, code, std::move(message)};
  };

  if (draining_) {
    TELEM_COUNT("serve.shed_draining");
    return shed(shed_draining_, ErrorCode::kDraining, "service is draining");
  }
  if (job.n_flows == 0 || job.model_id.empty()) {
    return shed(rejected_other_, ErrorCode::kBadRequest,
                "generate requires a model_id and n_flows > 0");
  }
  if (job.n_flows > config_.max_flows_per_job) {
    // Also caps DRR cost arithmetic: an uncapped u64 n_flows would hold the
    // scheduler in credit accrual for ~n_flows/quantum scans (or overflow
    // the int64 cost outright at 2^63).
    return shed(rejected_other_, ErrorCode::kBadRequest,
                "n_flows " + std::to_string(job.n_flows) +
                    " exceeds the per-job limit of " +
                    std::to_string(config_.max_flows_per_job));
  }
  if (!model) {
    return shed(rejected_other_, ErrorCode::kModelNotFound,
                "no published model '" + job.model_id + "'");
  }
  const std::uint64_t now_ms = mono_now_ms();
  // Rate limiting sits ahead of the queue-occupancy sheds: an over-rate
  // tenant is told kRateLimited (with a computed wait) even when the queue
  // happens to have room, so the retry-after contract holds under light
  // load too.
  {
    const TenantRateLimiter::Verdict v =
        rate_limiter_.admit(job.tenant, job.n_flows, now_ms);
    if (!v.allowed) {
      TELEM_COUNT("serve.shed_rate_limited");
      SubmitResult r = shed(shed_rate_limited_, ErrorCode::kRateLimited,
                            "tenant '" + job.tenant + "' is over its rate cap");
      r.retry_after_ms = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(v.retry_after_ms, 0xffffffffull));
      return r;
    }
  }
  if (queued_ >= config_.queue_capacity) {
    TELEM_COUNT("serve.shed_overloaded");
    return shed(shed_overloaded_, ErrorCode::kOverloaded,
                "job queue is full");
  }
  if (known && known->inflight >= config_.tenant_inflight_cap) {
    TELEM_COUNT("serve.shed_overloaded");
    return shed(shed_overloaded_, ErrorCode::kOverloaded,
                "tenant '" + job.tenant + "' hit its in-flight cap");
  }

  if (!known) {
    known = &tenants_.try_emplace(job.tenant).first->second;
    rr_order_.push_back(job.tenant);
    ++known->submitted;
  }
  auto p = std::make_unique<Pending>();
  p->job = std::move(job);
  p->callbacks = std::move(callbacks);
  p->model = std::move(model);
  p->submitted_at_ms = now_ms;
  const std::uint64_t budget = p->job.deadline_ms != 0
                                   ? p->job.deadline_ms
                                   : config_.default_deadline_ms;
  if (budget != 0) p->deadline_at_ms = now_ms + budget;
  known->queue.push_back(std::move(p));
  ++known->inflight;
  ++queued_;
  TELEM_GAUGE_SET("serve.queue_depth", queued_);
  work_cv_.notify_one();
  return {true, ErrorCode::kInternal, ""};
}

void Service::begin_drain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool Service::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void Service::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return queued_ == 0 && running_ == 0; });
}

void Service::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) return;
    // Deadline enforcement at dequeue: expired queued jobs never reach a
    // worker. Callbacks fire outside mu_ (the contract for all delivery),
    // then accounting settles under it.
    std::vector<PendingPtr> expired = reap_expired_locked(mono_now_ms());
    if (!expired.empty()) {
      lock.unlock();
      for (const PendingPtr& p : expired) {
        if (p->callbacks.on_error) {
          p->callbacks.on_error(ErrorCode::kDeadlineExceeded,
                                "deadline expired while queued");
        }
      }
      lock.lock();
      for (const PendingPtr& p : expired) {
        finish_job_locked(*p, ErrorCode::kDeadlineExceeded, false, 0);
      }
      progress_seq_.fetch_add(1, std::memory_order_relaxed);
      drain_cv_.notify_all();
      continue;  // state changed; re-scan before blocking
    }
    std::vector<PendingPtr> batch = next_batch_locked();
    if (batch.empty()) {
      work_cv_.wait(lock);
      continue;
    }
    busy_models_.insert(batch.front()->model.get());
    queued_ -= batch.size();
    running_ += batch.size();
    ++batches_;
    if (batch.size() > 1) coalesced_jobs_ += batch.size();
    TELEM_GAUGE_SET("serve.queue_depth", queued_);
    TELEM_HIST("serve.batch_jobs", batch.size(), 1, 2, 4, 8, 16);
    lock.unlock();
    // std::function is copyable, PendingPtr is not: park the batch in a
    // shared_ptr for the trip through the pool queue.
    auto boxed =
        std::make_shared<std::vector<PendingPtr>>(std::move(batch));
    pool_->submit([this, boxed] { run_batch(std::move(*boxed)); });
    lock.lock();
  }
}

std::vector<Service::PendingPtr> Service::reap_expired_locked(
    std::uint64_t now_ms) {
  std::vector<PendingPtr> expired;
  for (auto& [name, t] : tenants_) {
    for (auto it = t.queue.begin(); it != t.queue.end();) {
      Pending& p = **it;
      if (p.deadline_at_ms != 0 && now_ms >= p.deadline_at_ms) {
        expired.push_back(std::move(*it));
        it = t.queue.erase(it);
        --queued_;
      } else {
        ++it;
      }
    }
  }
  if (!expired.empty()) TELEM_GAUGE_SET("serve.queue_depth", queued_);
  return expired;
}

std::vector<Service::PendingPtr> Service::next_batch_locked() {
  std::vector<PendingPtr> batch;
  const std::size_t T = rr_order_.size();
  const auto quantum = static_cast<std::int64_t>(config_.drr_quantum);
  // Pass 1 is one classic DRR scan. If nothing dispatched but some head on
  // an idle model was merely starved for credit, every starved tenant is
  // granted the minimum number of whole quanta that makes one head
  // affordable, and pass 2 dispatches it — the same outcome as that many
  // more scans, without holding mu_ for ceil(cost/quantum) passes.
  for (int pass = 0; pass < 2 && batch.empty(); ++pass) {
    std::vector<Tenant*> starved;
    std::int64_t min_quanta = 0;
    for (std::size_t scan = 0; scan < T; ++scan) {
      const std::size_t ti = (rr_next_ + scan) % T;
      Tenant& t = tenants_.find(rr_order_[ti])->second;
      if (t.queue.empty()) continue;
      Pending& head = *t.queue.front();
      if (busy_models_.count(head.model.get())) continue;
      // Admission caps n_flows at max_flows_per_job, so the cast is exact.
      const auto cost = static_cast<std::int64_t>(head.job.n_flows);
      // Lazy refill: credit accrues only while the tenant cannot afford its
      // head job, so an idle tenant's deficit stays bounded by one quantum
      // above the largest job it ever queued.
      if (t.deficit < cost) t.deficit += quantum;
      if (t.deficit < cost) {
        const std::int64_t quanta = (cost - t.deficit + quantum - 1) / quantum;
        if (starved.empty() || quanta < min_quanta) min_quanta = quanta;
        starved.push_back(&t);
        continue;
      }
      t.deficit -= cost;
      batch.push_back(std::move(t.queue.front()));
      t.queue.pop_front();
      rr_next_ = (ti + 1) % T;
      break;
    }
    if (!batch.empty() || starved.empty()) break;
    for (Tenant* t : starved) t->deficit += min_quanta * quantum;
  }
  if (batch.empty()) return batch;

  // Coalesce: pull queue heads targeting the same loaded model instance
  // (same model_id + version), in RR order, charging each donor tenant's
  // deficit — possibly below zero, which future refills repay, so borrowed
  // throughput is not free throughput.
  const LoadedModel* key = batch.front()->model.get();
  bool progress = true;
  while (progress && batch.size() < config_.max_coalesce) {
    progress = false;
    for (std::size_t scan = 0;
         scan < T && batch.size() < config_.max_coalesce; ++scan) {
      Tenant& t = tenants_.find(rr_order_[(rr_next_ + scan) % T])->second;
      if (t.queue.empty()) continue;
      Pending& head = *t.queue.front();
      if (head.model.get() != key) continue;
      t.deficit -= static_cast<std::int64_t>(head.job.n_flows);
      batch.push_back(std::move(t.queue.front()));
      t.queue.pop_front();
      progress = true;
    }
  }
  return batch;
}

void Service::run_batch(std::vector<PendingPtr> batch) {
  LoadedModel& model = *batch.front()->model;
  const std::size_t M = model.num_chunks();
  std::vector<std::vector<std::size_t>> targets(batch.size());
  std::vector<std::uint64_t> records(batch.size(), 0);
  std::vector<char> failed(batch.size(), 0);
  std::vector<ErrorCode> errcode(batch.size(), ErrorCode::kInternal);
  std::vector<std::string> errmsg(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    targets[i] = model.record_targets(batch[i]->job.n_flows);
  }
  {
    TELEM_SPAN("serve.batch",
               {"jobs", static_cast<long long>(batch.size())});
    // Chunk-major: each chunk's model warms once per batch, and every job's
    // chunk part streams out the moment it is exported. Each part draws only
    // from the job's own seed streams, so this order — and the batch
    // composition itself — cannot leak into any job's bytes.
    net::FlowTrace part;
    for (std::size_t c = 0; c < M; ++c) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (failed[i] || targets[i][c] == 0 || !model.has_chunk_model(c)) {
          continue;
        }
        // Deadline enforcement between coalesced batch parts: a job whose
        // budget ran out abandons its remaining chunks; its batch-mates are
        // untouched (their bytes never depended on it).
        const std::uint64_t dl = batch[i]->deadline_at_ms;
        if (dl != 0 && mono_now_ms() >= dl) {
          failed[i] = 1;
          errcode[i] = ErrorCode::kDeadlineExceeded;
          errmsg[i] = "deadline expired mid-batch at chunk " +
                      std::to_string(c);
          continue;
        }
        if (chaos_armed()) chaos_worker_chunk(c, i);
        try {
          model.sample_part(c, targets[i][c], batch[i]->job.seed, part);
          records[i] += part.records.size();
          progress_seq_.fetch_add(1, std::memory_order_relaxed);
          if (!part.records.empty() && batch[i]->callbacks.on_chunk) {
            batch[i]->callbacks.on_chunk(c, std::move(part));
            part = net::FlowTrace{};
          }
        } catch (const std::exception& e) {
          failed[i] = 1;
          errcode[i] = ErrorCode::kInternal;
          errmsg[i] = e.what();
        }
      }
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const JobCallbacks& cb = batch[i]->callbacks;
    if (failed[i]) {
      if (cb.on_error) cb.on_error(errcode[i], errmsg[i]);
    } else if (cb.on_done) {
      cb.on_done(records[i], model.version());
    }
  }
  progress_seq_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    finish_job_locked(*batch[i], errcode[i], failed[i] == 0, records[i]);
  }
  busy_models_.erase(&model);
  running_ -= batch.size();
  work_cv_.notify_all();   // the model is free; same-model work may dispatch
  drain_cv_.notify_all();
}

void Service::finish_job_locked(const Pending& p, ErrorCode code, bool ok,
                                std::uint64_t records) {
  Tenant& t = tenants_.find(p.job.tenant)->second;
  --t.inflight;
  if (!ok) {
    if (code == ErrorCode::kDeadlineExceeded) {
      ++deadline_exceeded_;
      TELEM_COUNT("serve.deadline_exceeded");
    } else {
      ++errors_;
      TELEM_COUNT("serve.jobs_failed");
    }
    return;
  }
  ++t.completed;
  ++completed_;
  t.records += records;
  const double ms =
      static_cast<double>(mono_now_ms() - p.submitted_at_ms);
  ++t.latency_hist[latency_bucket(ms)];
  t.latency_sum_ms += ms;
  ++t.latency_count;
  TELEM_COUNT("serve.jobs_completed");
  TELEM_HIST("serve.job_latency_ms", ms, 1, 10, 100, 1000, 10000);
}

void Service::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.watchdog_poll_ms));
    if (stopping_) return;
    const std::uint64_t now = mono_now_ms();
    const std::uint64_t seq = progress_seq_.load(std::memory_order_relaxed);
    if (seq != watchdog_seen_seq_) {
      watchdog_seen_seq_ = seq;
      watchdog_progress_ms_ = now;
      stalled_ = false;
    }
    const bool busy = queued_ > 0 || running_ > 0;
    progress_age_ms_ = busy && now > watchdog_progress_ms_
                           ? now - watchdog_progress_ms_
                           : 0;
    if (!busy) {
      // Idle is never a stall; restart the age window on the next job.
      watchdog_progress_ms_ = now;
      stalled_ = false;
    } else if (progress_age_ms_ >= config_.watchdog_stall_ms && !stalled_) {
      // One report per stall episode; the next progress bump rearms it.
      stalled_ = true;
      ++watchdog_stalls_;
      TELEM_COUNT("serve.watchdog_stalls");
      TELEM_DIAG(::netshare::telemetry::Severity::kWarn, "serve.watchdog",
                 "no scheduler progress for %llu ms (queued=%zu running=%zu)",
                 static_cast<unsigned long long>(progress_age_ms_), queued_,
                 running_);
    }
    // Nudge the scheduler so queued jobs whose deadline has passed get
    // reaped even when no submit/finish would otherwise wake it.
    work_cv_.notify_all();
  }
}

ServiceStatsSnapshot Service::stats() const {
  ServiceStatsSnapshot s;
  s.models_loaded = registry_.models_loaded();
  std::lock_guard<std::mutex> lock(mu_);
  s.draining = draining_;
  s.queue_depth = queued_;
  s.running = running_;
  s.submitted = submitted_;
  s.completed = completed_;
  s.shed_overloaded = shed_overloaded_;
  s.shed_draining = shed_draining_;
  s.shed_rate_limited = shed_rate_limited_;
  s.rejected_other = rejected_other_;
  s.errors = errors_;
  s.deadline_exceeded = deadline_exceeded_;
  s.batches = batches_;
  s.coalesced_jobs = coalesced_jobs_;
  s.watchdog_stalls = watchdog_stalls_;
  s.progress_age_ms = progress_age_ms_;
  s.stalled = stalled_;
  s.tenants.reserve(rr_order_.size());
  for (const std::string& name : rr_order_) {
    const Tenant& t = tenants_.find(name)->second;
    TenantStatsSnapshot ts;
    ts.tenant = name;
    ts.submitted = t.submitted;
    ts.completed = t.completed;
    ts.shed = t.shed;
    ts.records = t.records;
    ts.latency_hist = t.latency_hist;
    ts.latency_sum_ms = t.latency_sum_ms;
    ts.latency_count = t.latency_count;
    s.tenants.push_back(std::move(ts));
  }
  TELEM_GAUGE_SET("serve.models_loaded", s.models_loaded);
  return s;
}

}  // namespace netshare::serve
