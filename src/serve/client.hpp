// In-process client for the generation service: the same job lifecycle the
// socket layer drives (submit -> streamed chunk parts -> done/error -> final
// merge), minus the wire. Tests use it to exercise admission, coalescing,
// fairness, hot-swap, and drain semantics without sockets; the daemon's
// connection handler is this logic with frames in place of calls.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/service.hpp"

namespace netshare::serve {

// Terminal outcome of one generate job. On ok, `trace` is the merged,
// time-ordered, trimmed-to-n synthetic trace — bitwise identical to the
// offline NetShare::generate_flows output for the same (snapshot, config,
// derived seed).
struct ClientResult {
  bool ok = false;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  net::FlowTrace trace;
  std::uint64_t model_version = 0;
};

class ServeClient {
 public:
  // A submitted job; wait() blocks until the service settles it. Safe to
  // destroy without waiting only after wait() returned (the service holds
  // callbacks into this object while the job is live), so PendingJob is
  // handed out as shared_ptr and the callbacks keep it alive.
  class PendingJob {
   public:
    ClientResult wait();

   private:
    friend class ServeClient;
    void on_chunk(std::size_t chunk_index, net::FlowTrace part);
    void finish(ClientResult r);

    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    std::size_t n_ = 0;
    std::map<std::size_t, net::FlowTrace> parts_;  // by chunk index
    ClientResult result_;
  };

  explicit ServeClient(Service& service) : service_(&service) {}

  // Non-blocking submit; a rejected job's handle is already settled.
  std::shared_ptr<PendingJob> submit(const std::string& model_id,
                                     const std::string& tenant, std::size_t n,
                                     std::uint64_t seed);

  // Blocking one-shot: submit + wait + merge.
  ClientResult generate(const std::string& model_id, const std::string& tenant,
                        std::size_t n, std::uint64_t seed);

 private:
  Service* service_;
};

}  // namespace netshare::serve
