// In-process client for the generation service: the same job lifecycle the
// socket layer drives (submit -> streamed chunk parts -> done/error -> final
// merge), minus the wire. Tests use it to exercise admission, coalescing,
// fairness, hot-swap, and drain semantics without sockets; the daemon's
// connection handler is this logic with frames in place of calls.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/service.hpp"

namespace netshare::serve {

// Terminal outcome of one generate job. On ok, `trace` is the merged,
// time-ordered, trimmed-to-n synthetic trace — bitwise identical to the
// offline NetShare::generate_flows output for the same (snapshot, config,
// derived seed).
struct ClientResult {
  bool ok = false;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  net::FlowTrace trace;
  std::uint64_t model_version = 0;
  std::uint32_t retry_after_ms = 0;  // server backoff hint on a typed shed
  std::size_t attempts = 1;          // submissions consumed (retry paths)
};

// Client-side retry policy: jittered exponential backoff for transient
// sheds (kOverloaded, kRateLimited and, on the socket path, lost
// connections). Retrying the identical job is idempotent by construction —
// service output is a pure function of (snapshot, config, seed) — so a
// retry can only yield the same bytes, never a duplicate side effect.
struct RetryPolicy {
  std::size_t max_attempts = 4;        // total attempts including the first
  std::uint64_t base_backoff_ms = 50;  // doubles per failed attempt
  std::uint64_t max_backoff_ms = 2000;
  std::uint64_t seed = 0;  // jitter stream; vary per client for decorrelation
  // Injectable sleep so tests advance a ManualClock instead of waiting;
  // empty = real std::this_thread::sleep_for.
  std::function<void(std::uint64_t ms)> sleep_fn;
};

// Wait before the retry that follows failure number `attempt` (1-based):
// uniform in [b/2, b] for b = min(max_backoff, base_backoff << (attempt-1)),
// raised to the server's retry-after hint when that is larger. Pure function
// of (policy seed, attempt, hint) — tests replay schedules exactly.
std::uint64_t retry_backoff_ms(const RetryPolicy& policy, std::size_t attempt,
                               std::uint64_t retry_after_ms);

// True for typed sheds where an identical resubmission may succeed.
bool retryable(ErrorCode code);

class ServeClient {
 public:
  // A submitted job; wait() blocks until the service settles it. Safe to
  // destroy without waiting only after wait() returned (the service holds
  // callbacks into this object while the job is live), so PendingJob is
  // handed out as shared_ptr and the callbacks keep it alive.
  class PendingJob {
   public:
    ClientResult wait();

   private:
    friend class ServeClient;
    void on_chunk(std::size_t chunk_index, net::FlowTrace part);
    void finish(ClientResult r);

    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    std::size_t n_ = 0;
    std::map<std::size_t, net::FlowTrace> parts_;  // by chunk index
    ClientResult result_;
  };

  explicit ServeClient(Service& service) : service_(&service) {}

  // Non-blocking submit; a rejected job's handle is already settled.
  std::shared_ptr<PendingJob> submit(const std::string& model_id,
                                     const std::string& tenant, std::size_t n,
                                     std::uint64_t seed,
                                     std::uint64_t deadline_ms = 0);

  // Blocking one-shot: submit + wait + merge.
  ClientResult generate(const std::string& model_id, const std::string& tenant,
                        std::size_t n, std::uint64_t seed,
                        std::uint64_t deadline_ms = 0);

  // generate() with retry on transient sheds, honoring the server's
  // retry-after hint (see RetryPolicy).
  ClientResult generate_with_retry(const std::string& model_id,
                                   const std::string& tenant, std::size_t n,
                                   std::uint64_t seed,
                                   const RetryPolicy& policy,
                                   std::uint64_t deadline_ms = 0);

 private:
  Service* service_;
};

}  // namespace netshare::serve
