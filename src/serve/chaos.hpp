// Deterministic chaos harness for the serving stack (DESIGN.md §14): the
// service-layer extension of ml::health::FaultPlan. A global seed-driven
// plan, armed via an acquire/release flag, injects
//
//   - socket faults: reply writes fragmented into short writes, connections
//     shut mid-frame, slow-reader stalls before a write;
//   - registry faults: publish builds failing with a typed
//     ml::SnapshotError (kIo) before anything is installed;
//   - worker faults: per-(job, chunk) delays inside the sampling loop, plus
//     an optional test hook invoked at the same site for hand-built
//     blocking scenarios (watchdog tests).
//
// Determinism: every probabilistic decision is splitmix64(seed, site,
// per-site counter) — the Nth decision at a site is a pure function of the
// plan, so a failing soak replays with the same fault schedule. Under
// concurrency the MAPPING of decisions to jobs can vary with thread
// interleaving; the soak therefore asserts schedule-independent properties
// (no hangs, typed errors only, bitwise-correct successes), not which job
// fails. Arm/clear only while the service stack is quiescent. Production
// cost: one relaxed load + predicted-not-taken branch per site.
#pragma once

#include <cstdint>
#include <functional>

namespace netshare::serve {

struct ChaosPlan {
  std::uint64_t seed = 1;

  // Socket reply-path faults (SocketServer::Conn::write_frame).
  double p_send_short_write = 0.0;  // fragment the write into two sends
  double p_send_disconnect = 0.0;   // send a prefix, then shut the socket
  double p_send_stall = 0.0;        // sleep send_stall_ms before writing
  std::uint64_t send_stall_ms = 0;

  // Registry faults: ModelRegistry::publish fails its build with a typed
  // SnapshotError(kIo) — the serving version must stay untouched.
  double p_registry_load_fail = 0.0;

  // Worker faults: sleep worker_delay_ms before sampling a chunk part.
  double p_worker_delay = 0.0;
  std::uint64_t worker_delay_ms = 0;

  // Test hook, run at the worker per-(job, chunk) injection site whenever
  // armed (independent of p_worker_delay). Lets tests block a batch on a
  // condition they control — the deterministic stuck-batch scenario.
  std::function<void(std::size_t chunk, std::size_t job_index)> worker_hook;
};

void set_chaos_plan(const ChaosPlan& plan);
void clear_chaos_plan();
bool chaos_armed();

// RAII arm/clear for tests.
class ScopedChaosPlan {
 public:
  explicit ScopedChaosPlan(const ChaosPlan& plan) { set_chaos_plan(plan); }
  ~ScopedChaosPlan() { clear_chaos_plan(); }
  ScopedChaosPlan(const ScopedChaosPlan&) = delete;
  ScopedChaosPlan& operator=(const ScopedChaosPlan&) = delete;
};

// --- injection sites (called from socket/service/model_registry) ---------

// Socket write verdict for one frame buffer of `len` bytes.
struct ChaosSendFault {
  std::uint64_t stall_ms = 0;   // sleep this long before writing
  std::size_t fragment_at = 0;  // >0: send [0, fragment_at) then the rest
  bool disconnect = false;      // send the fragment prefix, then shut down
};
ChaosSendFault chaos_send_fault(std::size_t len);

// True when this publish build must fail with SnapshotError(kIo).
bool chaos_registry_load_fails();

// Runs the worker hook (if any) and sleeps the sampled worker delay.
// Called once per (job, chunk) before sampling the part.
void chaos_worker_chunk(std::size_t chunk, std::size_t job_index);

}  // namespace netshare::serve
