#include "serve/client.hpp"

#include <utility>
#include <vector>

namespace netshare::serve {

void ServeClient::PendingJob::on_chunk(std::size_t chunk_index,
                                       net::FlowTrace part) {
  std::lock_guard<std::mutex> lock(mu_);
  parts_[chunk_index] = std::move(part);
}

void ServeClient::PendingJob::finish(ClientResult r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(r);
    if (result_.ok) {
      // Same final merge as the offline path: parts in ascending chunk
      // order, globally time-ordered, trimmed to n.
      std::vector<net::FlowTrace> parts;
      parts.reserve(parts_.size());
      for (auto& [c, part] : parts_) parts.push_back(std::move(part));
      result_.trace = core::merge_flow_chunk_parts(parts, n_);
    }
    parts_.clear();
    done_ = true;
  }
  cv_.notify_all();
}

ClientResult ServeClient::PendingJob::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_; });
  return result_;
}

std::shared_ptr<ServeClient::PendingJob> ServeClient::submit(
    const std::string& model_id, const std::string& tenant, std::size_t n,
    std::uint64_t seed) {
  auto job = std::make_shared<PendingJob>();
  job->n_ = n;
  JobCallbacks cbs;
  cbs.on_chunk = [job](std::size_t c, net::FlowTrace part) {
    job->on_chunk(c, std::move(part));
  };
  cbs.on_done = [job](std::uint64_t, std::uint64_t version) {
    ClientResult r;
    r.ok = true;
    r.model_version = version;
    job->finish(std::move(r));
  };
  cbs.on_error = [job](ErrorCode code, const std::string& message) {
    ClientResult r;
    r.ok = false;
    r.code = code;
    r.message = message;
    job->finish(std::move(r));
  };
  SubmitResult sr = service_->submit(
      GenerateJob{model_id, tenant, n, seed}, std::move(cbs));
  if (!sr.accepted) {
    ClientResult r;
    r.ok = false;
    r.code = sr.code;
    r.message = std::move(sr.message);
    job->finish(std::move(r));
  }
  return job;
}

ClientResult ServeClient::generate(const std::string& model_id,
                                   const std::string& tenant, std::size_t n,
                                   std::uint64_t seed) {
  return submit(model_id, tenant, n, seed)->wait();
}

}  // namespace netshare::serve
