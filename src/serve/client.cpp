#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace netshare::serve {

std::uint64_t retry_backoff_ms(const RetryPolicy& policy, std::size_t attempt,
                               std::uint64_t retry_after_ms) {
  const std::size_t shift =
      std::min<std::size_t>(attempt > 0 ? attempt - 1 : 0, 20);
  const std::uint64_t backoff =
      std::min(policy.max_backoff_ms, policy.base_backoff_ms << shift);
  // Uniform jitter over [backoff/2, backoff] decorrelates clients that shed
  // together; counter-based draw keeps the schedule replayable.
  const std::uint64_t lo = backoff / 2;
  const std::uint64_t span = backoff - lo + 1;
  const std::uint64_t wait = lo + mix_seed(policy.seed, attempt) % span;
  return std::max(wait, retry_after_ms);
}

bool retryable(ErrorCode code) {
  return code == ErrorCode::kOverloaded || code == ErrorCode::kRateLimited;
}

namespace {

void retry_sleep(const RetryPolicy& policy, std::uint64_t ms) {
  if (policy.sleep_fn) {
    policy.sleep_fn(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

}  // namespace

void ServeClient::PendingJob::on_chunk(std::size_t chunk_index,
                                       net::FlowTrace part) {
  std::lock_guard<std::mutex> lock(mu_);
  parts_[chunk_index] = std::move(part);
}

void ServeClient::PendingJob::finish(ClientResult r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(r);
    if (result_.ok) {
      // Same final merge as the offline path: parts in ascending chunk
      // order, globally time-ordered, trimmed to n.
      std::vector<net::FlowTrace> parts;
      parts.reserve(parts_.size());
      for (auto& [c, part] : parts_) parts.push_back(std::move(part));
      result_.trace = core::merge_flow_chunk_parts(parts, n_);
    }
    parts_.clear();
    done_ = true;
  }
  cv_.notify_all();
}

ClientResult ServeClient::PendingJob::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_; });
  return result_;
}

std::shared_ptr<ServeClient::PendingJob> ServeClient::submit(
    const std::string& model_id, const std::string& tenant, std::size_t n,
    std::uint64_t seed, std::uint64_t deadline_ms) {
  auto job = std::make_shared<PendingJob>();
  job->n_ = n;
  JobCallbacks cbs;
  cbs.on_chunk = [job](std::size_t c, net::FlowTrace part) {
    job->on_chunk(c, std::move(part));
  };
  cbs.on_done = [job](std::uint64_t, std::uint64_t version) {
    ClientResult r;
    r.ok = true;
    r.model_version = version;
    job->finish(std::move(r));
  };
  cbs.on_error = [job](ErrorCode code, const std::string& message) {
    ClientResult r;
    r.ok = false;
    r.code = code;
    r.message = message;
    job->finish(std::move(r));
  };
  SubmitResult sr = service_->submit(
      GenerateJob{model_id, tenant, n, seed, deadline_ms}, std::move(cbs));
  if (!sr.accepted) {
    ClientResult r;
    r.ok = false;
    r.code = sr.code;
    r.message = std::move(sr.message);
    r.retry_after_ms = sr.retry_after_ms;
    job->finish(std::move(r));
  }
  return job;
}

ClientResult ServeClient::generate(const std::string& model_id,
                                   const std::string& tenant, std::size_t n,
                                   std::uint64_t seed,
                                   std::uint64_t deadline_ms) {
  return submit(model_id, tenant, n, seed, deadline_ms)->wait();
}

ClientResult ServeClient::generate_with_retry(
    const std::string& model_id, const std::string& tenant, std::size_t n,
    std::uint64_t seed, const RetryPolicy& policy, std::uint64_t deadline_ms) {
  const std::size_t attempts = std::max<std::size_t>(1, policy.max_attempts);
  ClientResult r;
  for (std::size_t attempt = 1;; ++attempt) {
    r = generate(model_id, tenant, n, seed, deadline_ms);
    r.attempts = attempt;
    if (r.ok || !retryable(r.code) || attempt >= attempts) return r;
    retry_sleep(policy, retry_backoff_ms(policy, attempt, r.retry_after_ms));
  }
}

}  // namespace netshare::serve
