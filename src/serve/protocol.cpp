#include "serve/protocol.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace netshare::serve {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kModelNotFound: return "model-not-found";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kRateLimited: return "rate-limited";
    case ErrorCode::kSnapshotIo: return "snapshot-io";
    case ErrorCode::kSnapshotTruncated: return "snapshot-truncated";
    case ErrorCode::kSnapshotBadMagic: return "snapshot-bad-magic";
    case ErrorCode::kSnapshotBadVersion: return "snapshot-bad-version";
    case ErrorCode::kSnapshotChecksum: return "snapshot-checksum";
    case ErrorCode::kSnapshotShape: return "snapshot-shape";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

ErrorCode error_code_for(ml::SnapshotError::Kind kind) {
  switch (kind) {
    case ml::SnapshotError::Kind::kIo: return ErrorCode::kSnapshotIo;
    case ml::SnapshotError::Kind::kTruncated:
      return ErrorCode::kSnapshotTruncated;
    case ml::SnapshotError::Kind::kBadMagic:
      return ErrorCode::kSnapshotBadMagic;
    case ml::SnapshotError::Kind::kBadVersion:
      return ErrorCode::kSnapshotBadVersion;
    case ml::SnapshotError::Kind::kChecksum:
      return ErrorCode::kSnapshotChecksum;
  }
  return ErrorCode::kInternal;
}

namespace {

// --- little-endian primitives ---

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  if (s.size() > 0xffff) {
    throw ProtocolError("string field exceeds 65535 bytes");
  }
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Bounds-checked reader over a frame body.
class Cursor {
 public:
  Cursor(const FrameBody& body, std::size_t offset)
      : data_(body.data()), size_(body.size()), pos_(offset) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint16_t len = u16();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }
  void done() const {
    if (pos_ != size_) throw ProtocolError("trailing bytes in frame payload");
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw ProtocolError("truncated frame payload");
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_;
};

// Begins a frame (length placeholder + type) and patches the length prefix
// on destruction.
class FrameScope {
 public:
  FrameScope(std::vector<std::uint8_t>& out, MsgType type) : out_(out) {
    start_ = out_.size();
    put_u32(out_, 0);  // patched below
    put_u8(out_, static_cast<std::uint8_t>(type));
  }
  ~FrameScope() {
    const std::size_t body = out_.size() - start_ - 4;
    for (int i = 0; i < 4; ++i) {
      out_[start_ + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(body >> (8 * i));
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::size_t start_;
};

void put_record(std::vector<std::uint8_t>& out, const net::FlowRecord& r) {
  put_u32(out, r.key.src_ip.value());
  put_u32(out, r.key.dst_ip.value());
  put_u16(out, r.key.src_port);
  put_u16(out, r.key.dst_port);
  put_u8(out, static_cast<std::uint8_t>(r.key.protocol));
  put_f64(out, r.start_time);
  put_f64(out, r.duration);
  put_u64(out, r.packets);
  put_u64(out, r.bytes);
  put_u8(out, r.is_attack ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(r.attack_type));
}

net::FlowRecord get_record(Cursor& cur) {
  net::FlowRecord r;
  r.key.src_ip = net::Ipv4Address(cur.u32());
  r.key.dst_ip = net::Ipv4Address(cur.u32());
  r.key.src_port = cur.u16();
  r.key.dst_port = cur.u16();
  r.key.protocol = static_cast<net::Protocol>(cur.u8());
  r.start_time = cur.f64();
  r.duration = cur.f64();
  r.packets = cur.u64();
  r.bytes = cur.u64();
  r.is_attack = cur.u8() != 0;
  r.attack_type = static_cast<net::AttackType>(cur.u8());
  return r;
}

Cursor open(const FrameBody& body, MsgType expected) {
  if (frame_type(body) != expected) {
    throw ProtocolError("frame type mismatch");
  }
  return Cursor(body, 1);
}

}  // namespace

void encode(const GenerateRequest& msg, std::vector<std::uint8_t>& out) {
  FrameScope frame(out, MsgType::kGenerate);
  put_u32(out, msg.request_id);
  put_str(out, msg.model_id);
  put_str(out, msg.tenant);
  put_u64(out, msg.n_flows);
  put_u64(out, msg.seed);
  put_u64(out, msg.deadline_ms);
}

void encode(const StatsRequest& msg, std::vector<std::uint8_t>& out) {
  FrameScope frame(out, MsgType::kStats);
  put_u32(out, msg.request_id);
}

void encode(const PublishRequest& msg, std::vector<std::uint8_t>& out) {
  FrameScope frame(out, MsgType::kPublish);
  put_u32(out, msg.request_id);
  put_str(out, msg.model_id);
  put_str(out, msg.snapshot_dir);
}

void encode(const ChunkReply& msg, std::vector<std::uint8_t>& out) {
  if (msg.part.records.size() > kMaxChunkRecords) {
    throw ProtocolError(
        "chunk part of " + std::to_string(msg.part.records.size()) +
        " records does not fit one frame; use encode_chunk_frames");
  }
  FrameScope frame(out, MsgType::kChunk);
  put_u32(out, msg.request_id);
  put_u32(out, msg.chunk_index);
  put_u32(out, static_cast<std::uint32_t>(msg.part.records.size()));
  for (const auto& r : msg.part.records) put_record(out, r);
}

void encode_chunk_frames(std::uint32_t request_id, std::uint32_t chunk_index,
                         const net::FlowTrace& part,
                         std::vector<std::uint8_t>& out,
                         std::size_t max_records_per_frame) {
  const std::size_t cap = std::max<std::size_t>(
      1, std::min(max_records_per_frame, kMaxChunkRecords));
  std::size_t off = 0;
  do {
    const std::size_t take = std::min(part.records.size() - off, cap);
    FrameScope frame(out, MsgType::kChunk);
    put_u32(out, request_id);
    put_u32(out, chunk_index);
    put_u32(out, static_cast<std::uint32_t>(take));
    for (std::size_t i = 0; i < take; ++i) {
      put_record(out, part.records[off + i]);
    }
    off += take;
  } while (off < part.records.size());
}

void encode(const DoneReply& msg, std::vector<std::uint8_t>& out) {
  FrameScope frame(out, MsgType::kDone);
  put_u32(out, msg.request_id);
  put_u64(out, msg.records);
  put_u64(out, msg.model_version);
}

void encode(const ErrorReply& msg, std::vector<std::uint8_t>& out) {
  FrameScope frame(out, MsgType::kError);
  put_u32(out, msg.request_id);
  put_u8(out, static_cast<std::uint8_t>(msg.code));
  put_str(out, msg.message);
  put_u32(out, msg.retry_after_ms);
}

void encode(const StatsReply& msg, std::vector<std::uint8_t>& out) {
  FrameScope frame(out, MsgType::kStatsReply);
  put_u32(out, msg.request_id);
  // Stats JSON can exceed the u16 string limit; length-prefix with u32.
  put_u32(out, static_cast<std::uint32_t>(msg.json.size()));
  out.insert(out.end(), msg.json.begin(), msg.json.end());
}

MsgType frame_type(const FrameBody& body) {
  if (body.empty()) throw ProtocolError("empty frame body");
  switch (body[0]) {
    case static_cast<std::uint8_t>(MsgType::kGenerate):
    case static_cast<std::uint8_t>(MsgType::kStats):
    case static_cast<std::uint8_t>(MsgType::kPublish):
    case static_cast<std::uint8_t>(MsgType::kChunk):
    case static_cast<std::uint8_t>(MsgType::kDone):
    case static_cast<std::uint8_t>(MsgType::kError):
    case static_cast<std::uint8_t>(MsgType::kStatsReply):
      return static_cast<MsgType>(body[0]);
    default:
      throw ProtocolError("unknown frame type " + std::to_string(body[0]));
  }
}

GenerateRequest decode_generate(const FrameBody& body) {
  Cursor cur = open(body, MsgType::kGenerate);
  GenerateRequest msg;
  msg.request_id = cur.u32();
  msg.model_id = cur.str();
  msg.tenant = cur.str();
  msg.n_flows = cur.u64();
  msg.seed = cur.u64();
  msg.deadline_ms = cur.u64();
  cur.done();
  return msg;
}

StatsRequest decode_stats(const FrameBody& body) {
  Cursor cur = open(body, MsgType::kStats);
  StatsRequest msg;
  msg.request_id = cur.u32();
  cur.done();
  return msg;
}

PublishRequest decode_publish(const FrameBody& body) {
  Cursor cur = open(body, MsgType::kPublish);
  PublishRequest msg;
  msg.request_id = cur.u32();
  msg.model_id = cur.str();
  msg.snapshot_dir = cur.str();
  cur.done();
  return msg;
}

ChunkReply decode_chunk(const FrameBody& body) {
  Cursor cur = open(body, MsgType::kChunk);
  ChunkReply msg;
  msg.request_id = cur.u32();
  msg.chunk_index = cur.u32();
  const std::uint32_t count = cur.u32();
  // A count promising more record bytes than the frame holds is malformed;
  // reject before reserving.
  if (static_cast<std::size_t>(count) * kChunkRecordWireBytes > body.size()) {
    throw ProtocolError("chunk record count exceeds frame size");
  }
  msg.part.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    msg.part.records.push_back(get_record(cur));
  }
  cur.done();
  return msg;
}

DoneReply decode_done(const FrameBody& body) {
  Cursor cur = open(body, MsgType::kDone);
  DoneReply msg;
  msg.request_id = cur.u32();
  msg.records = cur.u64();
  msg.model_version = cur.u64();
  cur.done();
  return msg;
}

ErrorReply decode_error(const FrameBody& body) {
  Cursor cur = open(body, MsgType::kError);
  ErrorReply msg;
  msg.request_id = cur.u32();
  msg.code = static_cast<ErrorCode>(cur.u8());
  msg.message = cur.str();
  msg.retry_after_ms = cur.u32();
  cur.done();
  return msg;
}

StatsReply decode_stats_reply(const FrameBody& body) {
  Cursor cur = open(body, MsgType::kStatsReply);
  StatsReply msg;
  msg.request_id = cur.u32();
  const std::uint32_t len = cur.u32();
  if (len > body.size()) {
    throw ProtocolError("stats json length exceeds frame size");
  }
  msg.json.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    msg.json.push_back(static_cast<char>(cur.u8()));
  }
  cur.done();
  return msg;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t len) {
  // Compact the consumed prefix before growing, keeping the buffer bounded
  // by one partial frame plus the newest slice.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

std::optional<FrameBody> FrameReader::next() {
  if (buf_.size() - pos_ < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= std::uint32_t{buf_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
  }
  if (len > max_frame_) {
    throw ProtocolError("frame length " + std::to_string(len) +
                        " exceeds limit");
  }
  if (buf_.size() - pos_ - 4 < len) return std::nullopt;
  FrameBody body(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4),
                 buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4 + len));
  pos_ += 4 + len;
  return body;
}

}  // namespace netshare::serve
