// Per-tenant token-bucket rate limiting over wall-clock windows
// (DESIGN.md §14). Layered in FRONT of the DRR scheduler: DRR shares the
// service's capacity fairly among whoever is queued, while these buckets cap
// each tenant's absolute rate — records/s and jobs/s — independent of how
// idle the rest of the fleet is. A shed is typed (kRateLimited) and carries
// a retry-after hint computed from the bucket's refill rate, so a
// well-behaved client backs off exactly as long as needed.
//
// Determinism: buckets read time exclusively through the injected monotonic
// clock (common/clock.hpp), so every admit/shed decision is a pure function
// of (config, submission sequence, clock readings) — tests step a
// ManualClock and replay decisions exactly.
//
// Thread-safety: none here. The Service consults the limiter under its own
// admission lock; the limiter is plain state.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace netshare::serve {

// Rate caps for one tenant class. A rate of 0 means uncapped on that axis.
struct RateClass {
  double records_per_sec = 0.0;
  double jobs_per_sec = 0.0;
  // Bucket capacity = rate * burst_seconds: how much of the cap a tenant
  // may consume instantaneously after an idle spell.
  double burst_seconds = 1.0;
};

struct RateLimitConfig {
  RateClass default_class;                    // applies to unlisted tenants
  std::map<std::string, RateClass> per_tenant;  // overrides by tenant name
};

// One token bucket. Admits a cost when the available tokens cover
// min(cost, capacity) — a job larger than one full burst is admitted against
// a full bucket and drives the balance negative, which later refills repay,
// so the long-run rate stays capped without ever wedging oversized jobs.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst_seconds);

  bool unlimited() const { return rate_ <= 0.0; }

  // Credits tokens for the wall-clock elapsed since the last refill.
  void refill(std::uint64_t now_ms);
  // Affordability check (post-refill); on reject reports how long until the
  // cost would be covered.
  bool can_take(double cost, std::uint64_t* retry_after_ms) const;
  // Deducts `cost`; may drive the balance negative (see class comment).
  void charge(double cost);

  // refill + can_take + charge in one step.
  bool try_take(double cost, std::uint64_t now_ms,
                std::uint64_t* retry_after_ms);

  double tokens() const { return tokens_; }

 private:
  double rate_ = 0.0;      // tokens per second
  double capacity_ = 0.0;  // max tokens held
  double tokens_ = 0.0;
  std::uint64_t last_refill_ms_ = 0;
  bool primed_ = false;  // first observation seeds last_refill_ms_
};

// The admission-side limiter: two buckets (records, jobs) per tenant,
// created lazily from the tenant's class on first sight. Only tenants the
// Service has ACCEPTED work from should reach here (the Service already
// bounds per-tenant state creation to admitted tenants).
class TenantRateLimiter {
 public:
  explicit TenantRateLimiter(RateLimitConfig config);

  struct Verdict {
    bool allowed = true;
    std::uint64_t retry_after_ms = 0;  // meaningful only when !allowed
  };

  // Admission check for one job of `records` records at `now_ms`. Charges
  // both buckets on admit; charges nothing on a shed. When both buckets
  // reject, the hint is the larger wait (both must be satisfied).
  Verdict admit(const std::string& tenant, std::size_t records,
                std::uint64_t now_ms);

  const RateClass& class_for(const std::string& tenant) const;

 private:
  struct Buckets {
    TokenBucket records;
    TokenBucket jobs;
  };

  RateLimitConfig config_;
  std::map<std::string, Buckets> buckets_;
};

}  // namespace netshare::serve
