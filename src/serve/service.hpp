// Generation-as-a-service scheduler (DESIGN.md §13): a bounded multi-tenant
// job queue in front of the chunk-part sampling toolkit.
//
//  - Admission control at submit(): typed rejections (Draining, Overloaded,
//    ModelNotFound, BadRequest) before a job ever holds resources; a global
//    queue bound plus per-tenant in-flight caps so one tenant cannot occupy
//    the whole queue.
//  - Deficit-round-robin fairness across tenants: each tenant accrues
//    `drr_quantum` records of credit per scheduler visit (lazy refill — only
//    when it cannot afford its head job, so credit stays bounded) and jobs
//    charge their n_flows against it. Record-weighted fair shares, not
//    job-count shares.
//  - Coalescing: compatible queued jobs (same LoadedModel instance, i.e.
//    same model_id + version + config hash) dispatch as one batch that walks
//    the model's chunks once, chunk-major, streaming each job's chunk part
//    the moment it is exported. Batches for the same model serialize (the
//    sampler reuses per-chunk scratch); different models — including the old
//    and new version across a hot-swap — run concurrently on the worker
//    pool.
//
// Determinism contract: a job's streamed parts are a pure function of
// (published snapshot, model config, job seed) — each part is sampled from
// the job's own counter-based stream — so output is bitwise independent of
// batch composition, tenant mix, worker count, and scheduling order.
// tests/test_serve.cpp locks this by comparing coalesced-concurrent runs
// against a serial one-job-at-a-time oracle.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/model_registry.hpp"
#include "serve/protocol.hpp"
#include "serve/rate_limiter.hpp"

namespace netshare::serve {

struct ServiceConfig {
  std::size_t workers = 2;          // sampling worker threads
  std::size_t queue_capacity = 64;  // queued jobs across all tenants
  std::size_t max_coalesce = 4;     // jobs per dispatched batch
  std::size_t tenant_inflight_cap = 8;  // queued + running jobs per tenant
  std::size_t drr_quantum = 1024;   // records of credit per DRR visit
  // Admission cap on a single job's n_flows (kBadRequest above it).
  // n_flows is wire-supplied, so this bounds scheduler credit math and
  // keeps every kChunk reply frame under FrameReader::kMaxFrame; sanitize
  // clamps it to kMaxChunkRecords.
  std::size_t max_flows_per_job = 1u << 20;

  // --- resilience (DESIGN.md §14) ---
  // Deadline applied to jobs that do not carry one on the wire; 0 = none.
  // Expired jobs fail typed (kDeadlineExceeded): queued jobs are reaped at
  // dequeue, running jobs abandon remaining chunk parts between parts.
  std::uint64_t default_deadline_ms = 0;
  // Per-tenant token buckets consulted at admission, ahead of the DRR
  // scheduler (kRateLimited + retry-after hint on shed).
  RateLimitConfig rate_limit;
  // Scheduler watchdog: reports a stall when jobs are queued or running but
  // no chunk part has been exported for watchdog_stall_ms (0 disables). Each
  // poll also nudges the scheduler so queued expired jobs get reaped even
  // with no new traffic.
  std::uint64_t watchdog_poll_ms = 200;
  std::uint64_t watchdog_stall_ms = 10000;
  // SO_SNDTIMEO on accepted daemon connections: a reply write blocked this
  // long (stuck reader) fails and drops the connection.
  std::uint64_t socket_send_timeout_ms = 30000;
  // Frame-size bound applied to bytes arriving at the daemon (requests are
  // small; replies are bounded separately via kMaxChunkRecords). 0 = the
  // protocol default FrameReader::kMaxFrame.
  std::size_t max_frame_bytes = 0;
};

struct GenerateJob {
  std::string model_id;
  std::string tenant;
  std::size_t n_flows = 0;
  std::uint64_t seed = 0;
  // Relative deadline budget from admission; 0 = use the config default.
  std::uint64_t deadline_ms = 0;
};

// Per-job result delivery, invoked from worker threads (never under the
// service lock, never from inside submit()). on_chunk streams one non-empty
// chunk part (ascending chunk index); then exactly one of on_done/on_error.
struct JobCallbacks {
  std::function<void(std::size_t chunk_index, net::FlowTrace part)> on_chunk;
  std::function<void(std::uint64_t records, std::uint64_t model_version)>
      on_done;
  std::function<void(ErrorCode code, const std::string& message)> on_error;
};

// Synchronous admission verdict: accepted == false carries the typed shed
// reply and the job's callbacks will never fire.
struct SubmitResult {
  bool accepted = false;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  // kRateLimited sheds: how long until the tenant's buckets would admit the
  // job (0 = no hint).
  std::uint32_t retry_after_ms = 0;
};

// Latency histogram bucket upper edges in milliseconds (last bucket is
// overflow). Shared by the stats surface and bench percentile estimation.
inline constexpr double kLatencyEdgesMs[] = {1,   2,   5,    10,   20,  50,
                                             100, 200, 500,  1000, 2000, 5000};
inline constexpr std::size_t kLatencyBuckets =
    sizeof(kLatencyEdgesMs) / sizeof(double) + 1;

struct TenantStatsSnapshot {
  std::string tenant;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t records = 0;  // records streamed to completed jobs
  std::vector<std::uint64_t> latency_hist;  // kLatencyBuckets counts
  double latency_sum_ms = 0.0;
  std::uint64_t latency_count = 0;
};

struct ServiceStatsSnapshot {
  bool draining = false;
  std::size_t queue_depth = 0;   // queued, not yet dispatched
  std::size_t running = 0;       // dispatched, not yet completed
  std::size_t models_loaded = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed_overloaded = 0;
  std::uint64_t shed_draining = 0;
  std::uint64_t shed_rate_limited = 0;  // kRateLimited admission sheds
  std::uint64_t rejected_other = 0;  // ModelNotFound / BadRequest
  std::uint64_t errors = 0;          // jobs that failed in execution
  std::uint64_t deadline_exceeded = 0;  // accepted jobs whose deadline passed
  std::uint64_t batches = 0;
  std::uint64_t coalesced_jobs = 0;  // jobs that shared a batch with others
  // health (watchdog view; see ServiceConfig::watchdog_stall_ms)
  std::uint64_t watchdog_stalls = 0;   // distinct stall episodes reported
  std::uint64_t progress_age_ms = 0;   // time since last progress while busy
  bool stalled = false;                // currently inside a stall episode
  std::vector<TenantStatsSnapshot> tenants;
};

// Histogram-based percentile estimate (upper edge of the bucket holding the
// q-quantile observation; overflow bucket reports the last edge). Used by
// the stats JSON and bench/service_bench.
double latency_percentile_ms(const std::vector<std::uint64_t>& hist, double q);

// Renders a snapshot as a single JSON object (the kStatsReply payload).
std::string to_json(const ServiceStatsSnapshot& stats);

class Service {
 public:
  Service(ModelRegistry& registry, ServiceConfig config);
  // Drains (completes every accepted job) and joins all threads.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Admission control. On acceptance the job owns a model handle (resolved
  // NOW — a later hot-swap does not retarget it) and its callbacks will fire
  // exactly once with done or error. On rejection nothing fires.
  SubmitResult submit(GenerateJob job, JobCallbacks callbacks);

  // Stops admitting (new submits shed with kDraining); queued and running
  // jobs still complete.
  void begin_drain();
  bool draining() const;

  // Blocks until every accepted job has completed (combine with
  // begin_drain() for shutdown; without it, new submits keep extending the
  // wait).
  void drain();

  ServiceStatsSnapshot stats() const;

  // Socket-layer knobs live in ServiceConfig so one struct configures the
  // whole daemon; SocketServer reads them through here.
  const ServiceConfig& config() const { return config_; }

 private:
  struct Pending {
    GenerateJob job;
    JobCallbacks callbacks;
    std::shared_ptr<LoadedModel> model;
    std::uint64_t submitted_at_ms = 0;  // injected monotonic clock
    std::uint64_t deadline_at_ms = 0;   // absolute; 0 = no deadline
  };
  using PendingPtr = std::unique_ptr<Pending>;

  struct Tenant {
    std::deque<PendingPtr> queue;
    std::int64_t deficit = 0;   // DRR credit in records; may go negative
                                // when coalescing borrows ahead
    std::size_t inflight = 0;   // queued + running
    // stats
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t records = 0;
    std::vector<std::uint64_t> latency_hist =
        std::vector<std::uint64_t>(kLatencyBuckets, 0);
    double latency_sum_ms = 0.0;
    std::uint64_t latency_count = 0;
  };

  void scheduler_loop();
  void watchdog_loop();
  // Removes every queued job whose deadline has passed (deadline enforcement
  // at dequeue). Callbacks fire outside the lock; the caller then settles
  // accounting via finish_job_locked.
  std::vector<PendingPtr> reap_expired_locked(std::uint64_t now_ms);
  // Forms one batch under the lock; empty only when nothing is dispatchable
  // (queues empty, or every queued model is busy). A queued job on an idle
  // model that merely lacks DRR credit never yields an empty batch: the
  // starved tenants are fast-forwarded the minimum whole-quantum grant that
  // makes one head affordable, so at most two scans dispatch it.
  std::vector<PendingPtr> next_batch_locked();
  void run_batch(std::vector<PendingPtr> batch);
  void finish_job_locked(const Pending& p, ErrorCode code, bool ok,
                         std::uint64_t records);

  ModelRegistry& registry_;
  const ServiceConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // scheduler: new work / model freed
  std::condition_variable drain_cv_;  // drain(): all jobs settled
  std::condition_variable watchdog_cv_;  // watchdog: poll pacing / stop
  bool draining_ = false;
  bool stopping_ = false;

  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> rr_order_;  // tenant visit order (first-seen)
  std::size_t rr_next_ = 0;
  std::set<const LoadedModel*> busy_models_;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  TenantRateLimiter rate_limiter_;  // consulted under mu_ at admission

  // global stats
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t shed_overloaded_ = 0;
  std::uint64_t shed_draining_ = 0;
  std::uint64_t shed_rate_limited_ = 0;
  std::uint64_t rejected_other_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t coalesced_jobs_ = 0;

  // Progress heartbeat: bumped (without mu_) on every exported chunk part
  // and every settled job; the watchdog compares it across polls.
  std::atomic<std::uint64_t> progress_seq_{0};
  // Watchdog bookkeeping (under mu_).
  std::uint64_t watchdog_seen_seq_ = 0;
  std::uint64_t watchdog_progress_ms_ = 0;
  std::uint64_t watchdog_stalls_ = 0;
  std::uint64_t progress_age_ms_ = 0;
  bool stalled_ = false;

  // Workers before scheduler in declaration order is irrelevant for
  // construction but destruction runs ~Service explicitly (stop + join)
  // before members die, so order here is not load-bearing.
  std::unique_ptr<ThreadPool> pool_;
  std::thread scheduler_;
  std::thread watchdog_;
};

}  // namespace netshare::serve
