#include "serve/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>
#include <stdexcept>
#include <thread>
#include <utility>

#include "ml/serialize.hpp"
#include "serve/chaos.hpp"
#include "telemetry/telemetry.hpp"

namespace netshare::serve {

namespace {

// Whole-buffer send; false once the peer is gone or stalled. MSG_NOSIGNAL
// so a vanished client surfaces as EPIPE, not a process-killing SIGPIPE.
// Accepted fds carry SO_SNDTIMEO, so a peer that stops reading surfaces as
// EAGAIN here (-> false) instead of blocking a sampling worker forever.
bool send_exact(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

// Shared between the event loop (reads) and sampling workers (reply
// writes): the write mutex keeps frames whole, `closed` makes writes to a
// torn-down peer no-ops while the job itself runs to completion.
struct SocketServer::Conn {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> closed{false};
  FrameReader reader;

  explicit Conn(std::size_t max_frame) : reader(max_frame) {}

  // The fd closes with the last reference. Workers inside send() hold one
  // (via the callback's shared_ptr), so teardown can never race an
  // in-flight send against fd reuse.
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  void write_frame(const std::vector<std::uint8_t>& bytes) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed.load(std::memory_order_relaxed)) return;
    if (chaos_armed()) {
      // Holding write_mu through a chaos stall is the point: a slow reader
      // backs up every writer on this connection, exactly as SO_SNDTIMEO
      // backpressure would.
      const ChaosSendFault fault = chaos_send_fault(bytes.size());
      if (fault.stall_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.stall_ms));
      }
      if (fault.disconnect) {
        if (fault.fragment_at > 0) {
          send_exact(fd, bytes.data(), fault.fragment_at);
        }
        close_now();  // peer is left holding a partial frame
        return;
      }
      if (fault.fragment_at > 0 && fault.fragment_at < bytes.size()) {
        if (!send_exact(fd, bytes.data(), fault.fragment_at) ||
            !send_exact(fd, bytes.data() + fault.fragment_at,
                        bytes.size() - fault.fragment_at)) {
          close_now();
        }
        return;
      }
    }
    // A failed send (peer gone, or send-timeout backpressure) shuts the
    // socket down, which also lands the event loop on its drop path.
    if (!send_exact(fd, bytes.data(), bytes.size())) close_now();
  }

  // Deliberately does NOT take write_mu: a writer blocked in send() may
  // hold it, and shutdown() is exactly what unwedges that send (it fails
  // with EPIPE). The fd stays open until the last reference drops.
  void close_now() {
    if (!closed.exchange(true)) ::shutdown(fd, SHUT_RDWR);
  }
};

SocketServer::SocketServer(Service& service, ModelRegistry& registry,
                           std::string socket_path)
    : service_(&service), registry_(&registry), path_(std::move(socket_path)) {
  const sockaddr_un addr = make_addr(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot listen on '" + path_ +
                             "': " + std::strerror(err));
  }
  if (::pipe(wake_fd_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("pipe() failed");
  }
  loop_ = std::thread([this] { event_loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  // One byte through the self-pipe lands the poll loop on its exit path.
  const char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_[1], &byte, 1);
  loop_.join();
  std::vector<std::thread> publishers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->close_now();
    conns_.clear();
    publishers.swap(publish_threads_);
  }
  for (auto& t : publishers) t.join();
  ::close(wake_fd_[0]);
  ::close(wake_fd_[1]);
  ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void SocketServer::event_loop() {
  std::vector<std::shared_ptr<Conn>> local;  // loop-owned view of conns_
  std::uint8_t buf[65536];
  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({wake_fd_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& conn : local) fds.push_back({conn->fd, POLLIN, 0});
    // Connections accepted below this point are in `local` but not in
    // `fds`; the read loop must not index past what was actually polled.
    const std::size_t polled = local.size();
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) return;  // stop() poked the self-pipe
    if (fds[1].revents & POLLIN) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        // Bound reply writes: a client that connects and then never reads
        // must not pin a sampling worker in send() indefinitely — after
        // this timeout the send fails and the connection is torn down.
        const std::uint64_t timeout_ms =
            service_->config().socket_send_timeout_ms;
        timeval send_timeout{};
        send_timeout.tv_sec = static_cast<time_t>(timeout_ms / 1000);
        send_timeout.tv_usec =
            static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                     sizeof(send_timeout));
        auto conn =
            std::make_shared<Conn>(service_->config().max_frame_bytes);
        conn->fd = fd;
        local.push_back(conn);
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.push_back(conn);
        TELEM_COUNT("serve.socket.accepts");
      }
    }
    for (std::size_t i = 0; i < polled;) {
      const auto& conn = local[i];
      const short revents = fds[2 + i].revents;
      bool drop = conn->closed.load(std::memory_order_relaxed);
      if (!drop && (revents & (POLLIN | POLLHUP | POLLERR))) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n == 0 || (n < 0 && errno != EINTR)) {
          drop = true;
        } else if (n > 0) {
          try {
            conn->reader.feed(buf, static_cast<std::size_t>(n));
            while (auto frame = conn->reader.next()) {
              handle_frame(conn, *frame);
            }
          } catch (const ProtocolError&) {
            drop = true;  // desynced framing: the stream is unrecoverable
          }
        }
      }
      if (drop) {
        conn->close_now();
        {
          std::lock_guard<std::mutex> lock(conns_mu_);
          std::erase(conns_, conn);
        }
        local.erase(local.begin() + static_cast<std::ptrdiff_t>(i));
        // fds indexes are stale now; re-poll rather than fix up.
        break;
      }
      ++i;
    }
  }
}

void SocketServer::handle_frame(const std::shared_ptr<Conn>& conn,
                                const std::vector<std::uint8_t>& body) {
  std::uint32_t request_id = 0;
  try {
    switch (frame_type(body)) {
      case MsgType::kGenerate: {
        const GenerateRequest req = decode_generate(body);
        request_id = req.request_id;
        JobCallbacks cbs;
        cbs.on_chunk = [conn, id = req.request_id](std::size_t c,
                                                   net::FlowTrace part) {
          // A part too large for one frame splits across several kChunk
          // frames (the client appends per chunk_index), so a legitimately
          // huge job can never trip the reader's kMaxFrame guard.
          std::vector<std::uint8_t> bytes;
          encode_chunk_frames(id, static_cast<std::uint32_t>(c), part, bytes);
          conn->write_frame(bytes);
        };
        cbs.on_done = [conn, id = req.request_id](std::uint64_t records,
                                                  std::uint64_t version) {
          std::vector<std::uint8_t> bytes;
          encode(DoneReply{id, records, version}, bytes);
          conn->write_frame(bytes);
        };
        cbs.on_error = [conn, id = req.request_id](ErrorCode code,
                                                   const std::string& msg) {
          std::vector<std::uint8_t> bytes;
          encode(ErrorReply{id, code, msg}, bytes);
          conn->write_frame(bytes);
        };
        const SubmitResult sr = service_->submit(
            GenerateJob{req.model_id, req.tenant, req.n_flows, req.seed,
                        req.deadline_ms},
            std::move(cbs));
        if (!sr.accepted) {
          std::vector<std::uint8_t> bytes;
          encode(ErrorReply{req.request_id, sr.code, sr.message,
                            sr.retry_after_ms},
                 bytes);
          conn->write_frame(bytes);
        }
        return;
      }
      case MsgType::kStats: {
        const StatsRequest req = decode_stats(body);
        request_id = req.request_id;
        std::vector<std::uint8_t> bytes;
        encode(StatsReply{req.request_id, to_json(service_->stats())}, bytes);
        conn->write_frame(bytes);
        return;
      }
      case MsgType::kPublish: {
        const PublishRequest req = decode_publish(body);
        request_id = req.request_id;
        // publish() rebuilds the whole model (encoder fit + every chunk
        // restore) — minutes of work must not stall the event loop, so it
        // runs on its own thread; stop() joins.
        std::lock_guard<std::mutex> lock(conns_mu_);
        publish_threads_.emplace_back([this, conn, req] {
          std::vector<std::uint8_t> bytes;
          try {
            const std::uint64_t version =
                registry_->publish(req.model_id, req.snapshot_dir);
            encode(DoneReply{req.request_id, 0, version}, bytes);
          } catch (const ml::SnapshotError& e) {
            encode(ErrorReply{req.request_id, error_code_for(e.kind()),
                              e.what()},
                   bytes);
          } catch (const std::invalid_argument& e) {
            // Undefined model or a valid snapshot of the wrong shape.
            const ErrorCode code = std::string(e.what()).find("undefined") !=
                                           std::string::npos
                                       ? ErrorCode::kModelNotFound
                                       : ErrorCode::kSnapshotShape;
            encode(ErrorReply{req.request_id, code, e.what()}, bytes);
          } catch (const std::exception& e) {
            encode(ErrorReply{req.request_id, ErrorCode::kInternal, e.what()},
                   bytes);
          }
          conn->write_frame(bytes);
        });
        return;
      }
      default: {
        std::vector<std::uint8_t> bytes;
        encode(ErrorReply{0, ErrorCode::kBadRequest, "unexpected reply-type frame"},
               bytes);
        conn->write_frame(bytes);
        return;
      }
    }
  } catch (const ProtocolError& e) {
    // The frame was well-delimited but its payload malformed: answer typed
    // and keep the connection (framing is still in sync).
    std::vector<std::uint8_t> bytes;
    encode(ErrorReply{request_id, ErrorCode::kBadRequest, e.what()}, bytes);
    conn->write_frame(bytes);
  }
}

// ---------------------------------------------------------------------------
// SocketClient
// ---------------------------------------------------------------------------

SocketClient::SocketClient(const std::string& socket_path)
    : path_(socket_path) {
  const sockaddr_un addr = make_addr(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to '" + path_ +
                             "': " + std::strerror(err));
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  // Any buffered partial frame belongs to the dead stream.
  reader_ = FrameReader{};
}

bool SocketClient::reconnect() {
  disconnect();
  const sockaddr_un addr = make_addr(path_);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void SocketClient::send_all(const std::vector<std::uint8_t>& bytes) {
  if (!send_exact(fd_, bytes.data(), bytes.size())) {
    throw std::runtime_error("daemon connection lost (send)");
  }
}

std::vector<std::uint8_t> SocketClient::read_frame() {
  for (;;) {
    if (auto frame = reader_.next()) return std::move(*frame);
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw std::runtime_error("daemon connection lost (recv)");
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

ClientResult SocketClient::generate(const std::string& model_id,
                                    const std::string& tenant, std::size_t n,
                                    std::uint64_t seed,
                                    std::uint64_t deadline_ms) {
  const std::uint32_t id = next_request_id_++;
  GenerateRequest req;
  req.request_id = id;
  req.model_id = model_id;
  req.tenant = tenant;
  req.n_flows = n;
  req.seed = seed;
  req.deadline_ms = deadline_ms;
  std::vector<std::uint8_t> bytes;
  encode(req, bytes);
  send_all(bytes);

  ClientResult result;
  std::map<std::size_t, net::FlowTrace> parts;
  for (;;) {
    const std::vector<std::uint8_t> frame = read_frame();
    switch (frame_type(frame)) {
      case MsgType::kChunk: {
        ChunkReply reply = decode_chunk(frame);
        if (reply.request_id != id) continue;
        // Append, not assign: an oversized part arrives as several frames
        // for the same chunk_index, in record order.
        net::FlowTrace& dst = parts[reply.chunk_index];
        dst.records.insert(dst.records.end(),
                           std::make_move_iterator(reply.part.records.begin()),
                           std::make_move_iterator(reply.part.records.end()));
        break;
      }
      case MsgType::kDone: {
        const DoneReply reply = decode_done(frame);
        if (reply.request_id != id) continue;
        result.ok = true;
        result.model_version = reply.model_version;
        std::vector<net::FlowTrace> ordered;
        ordered.reserve(parts.size());
        for (auto& [c, part] : parts) ordered.push_back(std::move(part));
        result.trace = core::merge_flow_chunk_parts(ordered, n);
        return result;
      }
      case MsgType::kError: {
        const ErrorReply reply = decode_error(frame);
        if (reply.request_id != id) continue;
        result.ok = false;
        result.code = reply.code;
        result.message = reply.message;
        result.retry_after_ms = reply.retry_after_ms;
        return result;
      }
      default:
        continue;  // a pipelined reply for some other request
    }
  }
}

ClientResult SocketClient::generate_with_retry(
    const std::string& model_id, const std::string& tenant, std::size_t n,
    std::uint64_t seed, const RetryPolicy& policy, std::uint64_t deadline_ms) {
  const std::size_t attempts = std::max<std::size_t>(1, policy.max_attempts);
  ClientResult r;
  for (std::size_t attempt = 1;; ++attempt) {
    r = ClientResult{};
    r.attempts = attempt;
    if (fd_ < 0 && !reconnect()) {
      r.ok = false;
      r.code = ErrorCode::kInternal;
      r.message = "cannot reconnect to '" + path_ + "'";
    } else {
      try {
        r = generate(model_id, tenant, n, seed, deadline_ms);
        r.attempts = attempt;
        if (r.ok || !retryable(r.code)) return r;
      } catch (const std::runtime_error& e) {
        // Transport loss mid-exchange: this stream may hold half a reply,
        // so drop it and re-dial next attempt. Resubmitting the identical
        // job is idempotent by the determinism contract.
        disconnect();
        r.ok = false;
        r.code = ErrorCode::kInternal;
        r.message = e.what();
      }
    }
    if (attempt >= attempts) return r;
    std::uint64_t wait = retry_backoff_ms(policy, attempt, r.retry_after_ms);
    if (policy.sleep_fn) {
      policy.sleep_fn(wait);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
  }
}

ClientResult SocketClient::publish(const std::string& model_id,
                                   const std::string& snapshot_dir) {
  const std::uint32_t id = next_request_id_++;
  std::vector<std::uint8_t> bytes;
  encode(PublishRequest{id, model_id, snapshot_dir}, bytes);
  send_all(bytes);
  ClientResult result;
  for (;;) {
    const std::vector<std::uint8_t> frame = read_frame();
    if (frame_type(frame) == MsgType::kDone) {
      const DoneReply reply = decode_done(frame);
      if (reply.request_id != id) continue;
      result.ok = true;
      result.model_version = reply.model_version;
      return result;
    }
    if (frame_type(frame) == MsgType::kError) {
      const ErrorReply reply = decode_error(frame);
      if (reply.request_id != id) continue;
      result.ok = false;
      result.code = reply.code;
      result.message = reply.message;
      return result;
    }
  }
}

std::string SocketClient::stats() {
  const std::uint32_t id = next_request_id_++;
  std::vector<std::uint8_t> bytes;
  encode(StatsRequest{id}, bytes);
  send_all(bytes);
  for (;;) {
    const std::vector<std::uint8_t> frame = read_frame();
    if (frame_type(frame) != MsgType::kStatsReply) continue;
    const StatsReply reply = decode_stats_reply(frame);
    if (reply.request_id != id) continue;
    return reply.json;
  }
}

}  // namespace netshare::serve
