// Model registry for the generation service (DESIGN.md §13): loads
// snapshot-format-v1 checkpoint files (ml/serialize.hpp, the format
// ChunkedTrainer writes under NetShareConfig::checkpoint_dir) into immutable
// ref-counted LoadedModel handles with atomic hot-swap. publish() builds the
// whole replacement model first — every chunk file CRC-validated and
// restored — and only then swaps the shared_ptr, so a corrupt snapshot never
// unloads the version currently serving, in-flight jobs finish on the old
// handle they hold, and new jobs acquire the new one. No request is dropped
// across a swap.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/netshare.hpp"

namespace netshare::serve {

// How to rebuild a servable model around published weights: the generation
// config plus the reference trace the encoder (normalizers, chunk grid,
// vocabularies) is deterministically fitted on. Snapshots only carry GAN
// parameters, so spec and snapshot must describe the same training setup —
// a mismatch is rejected at publish time by parameter-count validation.
struct ModelSpec {
  core::NetShareConfig config;
  net::FlowTrace reference;
  std::shared_ptr<embed::Ip2Vec> ip2vec;  // may be null (bit-encoded ports)
};

// One published model version, immutable after construction and handed out
// as shared_ptr: holders may sample from it for as long as they keep the
// reference, regardless of later publishes.
//
// Thread-safety: sampling reuses per-chunk scratch workspaces, so the
// scheduler serializes batches per LoadedModel instance; distinct instances
// (hot-swapped versions, different models) sample concurrently without
// sharing any mutable state.
class LoadedModel {
 public:
  // Fits the encoder on spec.reference and restores one model per non-empty
  // chunk from "<snapshot_dir>/chunk_<c>.ckpt". Throws ml::SnapshotError
  // (typed corruption taxonomy) on a missing/invalid file and
  // std::invalid_argument on a parameter-shape mismatch.
  LoadedModel(const ModelSpec& spec, const std::string& snapshot_dir,
              std::uint64_t version);

  LoadedModel(const LoadedModel&) = delete;
  LoadedModel& operator=(const LoadedModel&) = delete;

  std::uint64_t version() const { return version_; }
  // Fingerprint of the generation-relevant config + encoded shape; the
  // coalescing key, so jobs batched together are guaranteed to share an
  // identical generation setup.
  std::uint64_t config_hash() const { return config_hash_; }
  std::size_t num_chunks() const { return encoder_.chunks().size(); }
  const std::vector<core::ChunkInfo>& chunks() const {
    return encoder_.chunks();
  }
  bool has_chunk_model(std::size_t c) const { return trainer_->has_model(c); }

  // Per-chunk record targets for an n-record job (core::chunk_record_targets
  // over this model's chunk grid).
  std::vector<std::size_t> record_targets(std::size_t n) const;

  // Samples + exports chunk c's sub-trace toward `target` records. Pure
  // function of (published weights, config, seed, c, target) — the unit the
  // service coalesces across jobs. NOT safe for concurrent calls on the
  // same instance (shared per-chunk scratch); the scheduler serializes.
  void sample_part(std::size_t c, std::size_t target, std::uint64_t seed,
                   net::FlowTrace& out);

  // Serial whole-job generation: parts for every chunk in ascending order,
  // merged. The per-job oracle the coalesced path is tested against, and
  // exactly what NetShare::generate_flows computes for the same seed.
  net::FlowTrace generate(std::size_t n, std::uint64_t seed);

 private:
  core::NetShareConfig config_;
  std::shared_ptr<embed::Ip2Vec> ip2vec_;
  core::FlowEncoder encoder_;  // holds a pointer to config_: no copies/moves
  std::unique_ptr<core::ChunkedTrainer> trainer_;
  std::uint64_t version_;
  std::uint64_t config_hash_;
};

class ModelRegistry {
 public:
  // Registers (or replaces) the rebuild recipe for model_id. Does not load
  // anything; the model serves only after a successful publish.
  void define(const std::string& model_id, ModelSpec spec);

  // Loads + CRC-validates every chunk snapshot under `snapshot_dir`, builds
  // the replacement LoadedModel, and atomically swaps it in. Returns the new
  // version. Throws std::invalid_argument for an undefined model_id,
  // ml::SnapshotError for corrupt/missing snapshot files, and leaves the
  // currently served version untouched on any failure. Concurrent publishes
  // for the same model_id install strictly in version order: a build that
  // finishes after a newer version is already serving is discarded, so the
  // registry version is monotone per model.
  std::uint64_t publish(const std::string& model_id,
                        const std::string& snapshot_dir);

  // Current version for model_id, or nullptr when unknown / not yet
  // published. The returned handle stays valid across later publishes.
  std::shared_ptr<LoadedModel> acquire(const std::string& model_id) const;

  // Number of model_ids with a published version.
  std::size_t models_loaded() const;

  std::vector<std::string> model_ids() const;

 private:
  struct Entry {
    ModelSpec spec;
    std::shared_ptr<LoadedModel> current;  // null until first publish
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::uint64_t next_version_ = 1;
};

}  // namespace netshare::serve
