// Wire protocol of the generation service (DESIGN.md §13): a simple
// length-prefixed binary framing over a local stream socket.
//
//   frame := u32 LE body_length | body
//   body  := u8 MsgType | payload (per-type layout below; all integers LE,
//            doubles as LE IEEE-754 bit patterns, strings as u16 length +
//            bytes)
//
// Every request carries a client-chosen u32 request_id that is echoed in
// every reply frame, so requests may be pipelined on one connection and the
// interleaved replies remain attributable. A generate request is answered by
// zero or more kChunk frames (ascending chunk index — results stream back
// incrementally as each chunk part is exported; a part too large for one
// frame spans several frames with the same chunk_index, and receivers
// append) terminated by exactly one kDone or kError frame.
//
// The codec layer here is pure byte-vector transformation — no sockets — so
// tests exercise framing, round-trips, and malformed-input rejection without
// any I/O.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/serialize.hpp"
#include "net/trace.hpp"

namespace netshare::serve {

enum class MsgType : std::uint8_t {
  // Requests (client -> daemon).
  kGenerate = 1,  // u32 id | str model_id | str tenant | u64 n_flows |
                  // u64 seed | u64 deadline_ms (0 = none)
  kStats = 2,     // u32 id
  kPublish = 3,   // u32 id | str model_id | str snapshot_dir

  // Replies (daemon -> client).
  kChunk = 64,       // u32 id | u32 chunk_index | u32 count | count records
  kDone = 65,        // u32 id | u64 records | u64 model_version
  kError = 66,       // u32 id | u8 ErrorCode | str message |
                     // u32 retry_after_ms (0 = no hint)
  kStatsReply = 67,  // u32 id | str json
};

// Typed rejection taxonomy. The kSnapshot* codes mirror
// ml::SnapshotError::Kind one-to-one, so a registry publish rejected over
// the wire carries exactly the corruption kind the training-resume path
// would have diagnosed.
enum class ErrorCode : std::uint8_t {
  kOverloaded = 1,     // admission control shed this job; retry later
  kDraining = 2,       // daemon is shutting down; no new jobs
  kModelNotFound = 3,  // unknown model_id / nothing published yet
  kBadRequest = 4,     // malformed or empty request
  kDeadlineExceeded = 5,  // the job's deadline passed before it finished
  kRateLimited = 6,    // tenant over its rate cap; honor retry_after_ms
  kSnapshotIo = 16,
  kSnapshotTruncated = 17,
  kSnapshotBadMagic = 18,
  kSnapshotBadVersion = 19,
  kSnapshotChecksum = 20,
  kSnapshotShape = 21,  // valid file, wrong parameter count for the model
  kInternal = 32,
};

const char* to_string(ErrorCode code);

// Maps the on-disk snapshot failure taxonomy onto wire codes.
ErrorCode error_code_for(ml::SnapshotError::Kind kind);

// Malformed frame / payload. Distinct from std::runtime_error so the socket
// layer can answer kBadRequest instead of dropping the connection state.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct GenerateRequest {
  std::uint32_t request_id = 0;
  std::string model_id;
  std::string tenant;
  std::uint64_t n_flows = 0;
  std::uint64_t seed = 0;
  // Relative deadline budget in milliseconds from admission; 0 = none (the
  // service may still apply its configured default).
  std::uint64_t deadline_ms = 0;
};

struct StatsRequest {
  std::uint32_t request_id = 0;
};

struct PublishRequest {
  std::uint32_t request_id = 0;
  std::string model_id;
  std::string snapshot_dir;
};

struct ChunkReply {
  std::uint32_t request_id = 0;
  std::uint32_t chunk_index = 0;
  net::FlowTrace part;
};

struct DoneReply {
  std::uint32_t request_id = 0;
  std::uint64_t records = 0;
  std::uint64_t model_version = 0;
};

struct ErrorReply {
  std::uint32_t request_id = 0;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  // For kRateLimited/kOverloaded: how long the client should back off
  // before retrying (0 = no hint).
  std::uint32_t retry_after_ms = 0;
};

struct StatsReply {
  std::uint32_t request_id = 0;
  std::string json;
};

// --- encoding: appends one complete frame (length prefix included) ---
void encode(const GenerateRequest& msg, std::vector<std::uint8_t>& out);
void encode(const StatsRequest& msg, std::vector<std::uint8_t>& out);
void encode(const PublishRequest& msg, std::vector<std::uint8_t>& out);
void encode(const ChunkReply& msg, std::vector<std::uint8_t>& out);
void encode(const DoneReply& msg, std::vector<std::uint8_t>& out);
void encode(const ErrorReply& msg, std::vector<std::uint8_t>& out);
void encode(const StatsReply& msg, std::vector<std::uint8_t>& out);

// --- decoding ---
// A complete frame body (type byte + payload, length prefix stripped).
using FrameBody = std::vector<std::uint8_t>;

// Type of a frame body; throws ProtocolError on empty body or unknown type.
MsgType frame_type(const FrameBody& body);

// Per-type payload decoders; throw ProtocolError on truncated / trailing /
// oversized payloads.
GenerateRequest decode_generate(const FrameBody& body);
StatsRequest decode_stats(const FrameBody& body);
PublishRequest decode_publish(const FrameBody& body);
ChunkReply decode_chunk(const FrameBody& body);
DoneReply decode_done(const FrameBody& body);
ErrorReply decode_error(const FrameBody& body);
StatsReply decode_stats_reply(const FrameBody& body);

// Incremental frame splitter for a byte stream: feed() arbitrary slices,
// next() yields complete frame bodies in order. A length prefix above the
// reader's bound throws ProtocolError (a desynced or hostile peer, not a
// real frame). The bound defaults to kMaxFrame and is configurable per
// reader (ServiceConfig::max_frame_bytes on accepted daemon connections).
class FrameReader {
 public:
  static constexpr std::size_t kMaxFrame = 64u << 20;

  explicit FrameReader(std::size_t max_frame = kMaxFrame)
      : max_frame_(max_frame == 0 ? kMaxFrame : max_frame) {}

  void feed(const std::uint8_t* data, std::size_t len);
  std::optional<FrameBody> next();

  std::size_t max_frame() const { return max_frame_; }

  // Bytes buffered but not yet returned (tests / diagnostics).
  std::size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted opportunistically
};

// On-wire size of one FlowRecord in a kChunk payload.
inline constexpr std::size_t kChunkRecordWireBytes = 46;

// Most records a single kChunk frame can carry without its length prefix
// exceeding FrameReader::kMaxFrame (13 bytes of type/id/index/count header).
// encode(ChunkReply) rejects anything larger; encode_chunk_frames splits.
// The service's max_flows_per_job admission cap is clamped to this, so a
// served chunk part always fits one frame.
inline constexpr std::size_t kMaxChunkRecords =
    (FrameReader::kMaxFrame - 13) / kChunkRecordWireBytes;

// Encodes `part` as one or more kChunk frames of at most
// `max_records_per_frame` records each (clamped to [1, kMaxChunkRecords]),
// so an arbitrarily large chunk part never produces an unreadable frame.
// Receivers accumulate by appending records per chunk_index; record order
// is preserved across the split. An empty part emits one empty frame.
void encode_chunk_frames(std::uint32_t request_id, std::uint32_t chunk_index,
                         const net::FlowTrace& part,
                         std::vector<std::uint8_t>& out,
                         std::size_t max_records_per_frame = kMaxChunkRecords);

}  // namespace netshare::serve
