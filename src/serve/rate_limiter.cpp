#include "serve/rate_limiter.hpp"

#include <algorithm>
#include <cmath>

namespace netshare::serve {

TokenBucket::TokenBucket(double rate_per_sec, double burst_seconds)
    : rate_(rate_per_sec),
      capacity_(std::max(1.0, rate_per_sec * std::max(0.0, burst_seconds))),
      tokens_(capacity_) {}

void TokenBucket::refill(std::uint64_t now_ms) {
  if (unlimited()) return;
  if (!primed_) {
    last_refill_ms_ = now_ms;
    primed_ = true;
    return;
  }
  if (now_ms > last_refill_ms_) {
    const double elapsed_s =
        static_cast<double>(now_ms - last_refill_ms_) / 1000.0;
    tokens_ = std::min(capacity_, tokens_ + elapsed_s * rate_);
    last_refill_ms_ = now_ms;
  }
}

bool TokenBucket::can_take(double cost, std::uint64_t* retry_after_ms) const {
  if (unlimited()) return true;
  // A cost above one full burst admits against a full bucket (the balance
  // goes negative and later refills repay it); anything else waits for
  // actual coverage.
  const double need = std::min(cost, capacity_);
  if (tokens_ >= need) return true;
  if (retry_after_ms != nullptr) {
    const double missing = need - tokens_;
    *retry_after_ms = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(missing / rate_ * 1000.0)));
  }
  return false;
}

void TokenBucket::charge(double cost) {
  if (!unlimited()) tokens_ -= cost;
}

bool TokenBucket::try_take(double cost, std::uint64_t now_ms,
                           std::uint64_t* retry_after_ms) {
  refill(now_ms);
  if (!can_take(cost, retry_after_ms)) return false;
  charge(cost);
  return true;
}

TenantRateLimiter::TenantRateLimiter(RateLimitConfig config)
    : config_(std::move(config)) {}

const RateClass& TenantRateLimiter::class_for(
    const std::string& tenant) const {
  auto it = config_.per_tenant.find(tenant);
  return it == config_.per_tenant.end() ? config_.default_class : it->second;
}

TenantRateLimiter::Verdict TenantRateLimiter::admit(const std::string& tenant,
                                                    std::size_t records,
                                                    std::uint64_t now_ms) {
  const RateClass& cls = class_for(tenant);
  if (cls.records_per_sec <= 0.0 && cls.jobs_per_sec <= 0.0) return {};
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    Buckets b;
    b.records = TokenBucket(cls.records_per_sec, cls.burst_seconds);
    b.jobs = TokenBucket(cls.jobs_per_sec, cls.burst_seconds);
    it = buckets_.emplace(tenant, b).first;
  }
  Buckets& b = it->second;
  b.records.refill(now_ms);
  b.jobs.refill(now_ms);
  // Check both before charging either: a job must not spend record tokens
  // only to be shed by the job bucket (or vice versa). Sheds charge nothing.
  std::uint64_t rec_wait = 0;
  std::uint64_t job_wait = 0;
  const bool rec_ok =
      b.records.can_take(static_cast<double>(records), &rec_wait);
  const bool job_ok = b.jobs.can_take(1.0, &job_wait);
  if (!rec_ok || !job_ok) {
    Verdict v;
    v.allowed = false;
    v.retry_after_ms = std::max(rec_wait, job_wait);
    return v;
  }
  b.records.charge(static_cast<double>(records));
  b.jobs.charge(1.0);
  return {};
}

}  // namespace netshare::serve
