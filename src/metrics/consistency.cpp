#include "metrics/consistency.hpp"

#include "net/ports.hpp"

namespace netshare::metrics {

namespace {

bool test1_ok(const net::FiveTuple& key) {
  return !key.src_ip.is_multicast() && !key.src_ip.is_broadcast_prefix() &&
         !key.dst_ip.is_zero_prefix();
}

bool test2_ok(net::Protocol proto, std::uint64_t packets, std::uint64_t bytes) {
  if (packets == 0) return false;
  const std::uint64_t min_size = net::min_packet_size(proto);
  return bytes >= min_size * packets &&
         bytes <= static_cast<std::uint64_t>(net::kMaxPacketSize) * packets;
}

bool test3_ok(const net::FiveTuple& key) {
  // Check both ports: if either is a well-known single-protocol port, the
  // protocol must comply.
  for (std::uint16_t port : {key.src_port, key.dst_port}) {
    if (auto pinned = net::well_known_port_protocol(port)) {
      if (*pinned != key.protocol) return false;
    }
  }
  return true;
}

double ratio(std::size_t ok, std::size_t total) {
  return total == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(total);
}

}  // namespace

ConsistencyResult check_flow_consistency(const net::FlowTrace& trace) {
  ConsistencyResult res;
  std::size_t ok1 = 0, ok2 = 0, ok3 = 0;
  for (const auto& r : trace.records) {
    ok1 += test1_ok(r.key);
    ok2 += test2_ok(r.key.protocol, r.packets, r.bytes);
    ok3 += test3_ok(r.key);
  }
  res.test1_ip_validity = ratio(ok1, trace.size());
  res.test2_bytes_vs_packets = ratio(ok2, trace.size());
  res.test3_port_protocol = ratio(ok3, trace.size());
  res.test4_min_packet_size = 1.0;  // not applicable to NetFlow
  return res;
}

ConsistencyResult check_packet_consistency(const net::PacketTrace& trace) {
  ConsistencyResult res;
  std::size_t ok1 = 0, ok3 = 0, ok4 = 0;
  for (const auto& p : trace.packets) {
    ok1 += test1_ok(p.key);
    ok3 += test3_ok(p.key);
    ok4 += p.size >= net::min_packet_size(p.key.protocol) &&
           p.size <= net::kMaxPacketSize;
  }
  res.test1_ip_validity = ratio(ok1, trace.size());
  res.test3_port_protocol = ratio(ok3, trace.size());
  res.test4_min_packet_size = ratio(ok4, trace.size());

  // Test 2 on the per-flow aggregates of the packet trace.
  std::size_t ok2 = 0;
  const auto aggs = net::aggregate_flows(trace);
  for (const auto& a : aggs) {
    ok2 += test2_ok(a.key.protocol, a.packets, a.bytes);
  }
  res.test2_bytes_vs_packets = ratio(ok2, aggs.size());
  return res;
}

}  // namespace netshare::metrics
