// Per-field fidelity suite (Sec. 6.2 Finding 1): JSD on categorical fields
// (SA, DA, SP, DP, PR) and EMD on continuous fields (NetFlow: TS, TD, PKT,
// BYT; PCAP: PS, PAT, FS).
#pragma once

#include <map>
#include <string>

#include "metrics/divergence.hpp"
#include "net/trace.hpp"

namespace netshare::metrics {

struct FidelityReport {
  // Field name -> JSD (categorical) or raw EMD (continuous).
  std::map<std::string, double> jsd;
  std::map<std::string, double> emd;

  double mean_jsd() const;
  // Mean of raw EMDs (per-field normalization across models is applied by
  // normalize_reports, since it needs all models' values).
  double mean_raw_emd() const;
};

// Compares real vs synthetic NetFlow traces on the paper's NetFlow fields.
FidelityReport compare_flows(const net::FlowTrace& real,
                             const net::FlowTrace& synthetic);

// Compares real vs synthetic packet traces on the paper's PCAP fields.
FidelityReport compare_packets(const net::PacketTrace& real,
                               const net::PacketTrace& synthetic);

// Applies the paper's per-field [0.1, 0.9] EMD normalization across a set of
// models' reports and returns each model's mean normalized EMD.
std::vector<double> mean_normalized_emds(
    const std::vector<FidelityReport>& reports);

}  // namespace netshare::metrics
