// Protocol-compliance checks from the paper's Appendix B (Tables 6, 7):
// each returns the fraction of records passing the test.
#pragma once

#include "net/trace.hpp"

namespace netshare::metrics {

struct ConsistencyResult {
  double test1_ip_validity = 0.0;      // src not multicast/broadcast, dst not 0.x
  double test2_bytes_vs_packets = 0.0; // per-protocol byte/packet bounds
  double test3_port_protocol = 0.0;    // well-known port implies protocol
  double test4_min_packet_size = 0.0;  // PCAP only
};

// NetFlow checks (Tests 1-3; Test 4 is PCAP-only and reported as 1.0).
ConsistencyResult check_flow_consistency(const net::FlowTrace& trace);

// PCAP checks (Tests 1, 3, 4 per packet; Test 2 over per-flow aggregates).
ConsistencyResult check_packet_consistency(const net::PacketTrace& trace);

}  // namespace netshare::metrics
