#include "metrics/field_metrics.hpp"

#include <stdexcept>

namespace netshare::metrics {

namespace {

std::vector<std::uint64_t> src_ips(const net::FlowTrace& t) {
  std::vector<std::uint64_t> v;
  v.reserve(t.size());
  for (const auto& r : t.records) v.push_back(r.key.src_ip.value());
  return v;
}
std::vector<std::uint64_t> dst_ips(const net::FlowTrace& t) {
  std::vector<std::uint64_t> v;
  v.reserve(t.size());
  for (const auto& r : t.records) v.push_back(r.key.dst_ip.value());
  return v;
}
std::vector<std::uint64_t> src_ips(const net::PacketTrace& t) {
  std::vector<std::uint64_t> v;
  v.reserve(t.size());
  for (const auto& p : t.packets) v.push_back(p.key.src_ip.value());
  return v;
}
std::vector<std::uint64_t> dst_ips(const net::PacketTrace& t) {
  std::vector<std::uint64_t> v;
  v.reserve(t.size());
  for (const auto& p : t.packets) v.push_back(p.key.dst_ip.value());
  return v;
}

template <typename Trace, typename Get>
std::vector<std::uint64_t> collect_u64(const Trace& records, Get get) {
  std::vector<std::uint64_t> v;
  v.reserve(records.size());
  for (const auto& r : records) v.push_back(get(r));
  return v;
}

template <typename Trace, typename Get>
std::vector<double> collect_f64(const Trace& records, Get get) {
  std::vector<double> v;
  v.reserve(records.size());
  for (const auto& r : records) v.push_back(get(r));
  return v;
}

// Scale substitution (DESIGN.md): at the repo's record budgets (thousands,
// not the paper's 1M), the raw port-value PMF of two independent draws of
// the SAME workload barely overlaps on ephemeral ports, so the metric would
// be dominated by sampling noise. Service ports (< 1024) keep their exact
// identity (the Fig. 3 structure); ephemeral ports are bucketed /1024.
std::uint64_t quantize_port(std::uint64_t port) {
  return port < 1024 ? port : 1024 + port / 1024;
}

}  // namespace

double FidelityReport::mean_jsd() const {
  if (jsd.empty()) return 0.0;
  double s = 0.0;
  for (const auto& [k, v] : jsd) s += v;
  return s / static_cast<double>(jsd.size());
}

double FidelityReport::mean_raw_emd() const {
  if (emd.empty()) return 0.0;
  double s = 0.0;
  for (const auto& [k, v] : emd) s += v;
  return s / static_cast<double>(emd.size());
}

FidelityReport compare_flows(const net::FlowTrace& real,
                             const net::FlowTrace& syn) {
  if (real.empty() || syn.empty()) {
    throw std::invalid_argument("compare_flows: empty trace");
  }
  FidelityReport rep;
  // Categorical fields (JSD). SA/DA use rank-frequency profiles.
  rep.jsd["SA"] = jsd(rank_frequency_pmf(src_ips(real)),
                      rank_frequency_pmf(src_ips(syn)));
  rep.jsd["DA"] = jsd(rank_frequency_pmf(dst_ips(real)),
                      rank_frequency_pmf(dst_ips(syn)));
  auto sp = [](const net::FlowRecord& r) {
    return quantize_port(r.key.src_port);
  };
  auto dp = [](const net::FlowRecord& r) {
    return quantize_port(r.key.dst_port);
  };
  auto pr = [](const net::FlowRecord& r) {
    return static_cast<std::uint64_t>(r.key.protocol);
  };
  rep.jsd["SP"] = jsd(empirical_pmf(collect_u64(real.records, sp)),
                      empirical_pmf(collect_u64(syn.records, sp)));
  rep.jsd["DP"] = jsd(empirical_pmf(collect_u64(real.records, dp)),
                      empirical_pmf(collect_u64(syn.records, dp)));
  rep.jsd["PR"] = jsd(empirical_pmf(collect_u64(real.records, pr)),
                      empirical_pmf(collect_u64(syn.records, pr)));

  // Continuous fields (EMD); times in milliseconds per the paper.
  auto ts = [](const net::FlowRecord& r) { return r.start_time * 1e3; };
  auto td = [](const net::FlowRecord& r) { return r.duration * 1e3; };
  auto pkt = [](const net::FlowRecord& r) { return static_cast<double>(r.packets); };
  auto byt = [](const net::FlowRecord& r) { return static_cast<double>(r.bytes); };
  rep.emd["TS"] = emd_1d(collect_f64(real.records, ts), collect_f64(syn.records, ts));
  rep.emd["TD"] = emd_1d(collect_f64(real.records, td), collect_f64(syn.records, td));
  rep.emd["PKT"] = emd_1d(collect_f64(real.records, pkt), collect_f64(syn.records, pkt));
  rep.emd["BYT"] = emd_1d(collect_f64(real.records, byt), collect_f64(syn.records, byt));
  return rep;
}

FidelityReport compare_packets(const net::PacketTrace& real,
                               const net::PacketTrace& syn) {
  if (real.empty() || syn.empty()) {
    throw std::invalid_argument("compare_packets: empty trace");
  }
  FidelityReport rep;
  rep.jsd["SA"] = jsd(rank_frequency_pmf(src_ips(real)),
                      rank_frequency_pmf(src_ips(syn)));
  rep.jsd["DA"] = jsd(rank_frequency_pmf(dst_ips(real)),
                      rank_frequency_pmf(dst_ips(syn)));
  auto sp = [](const net::PacketRecord& p) {
    return quantize_port(p.key.src_port);
  };
  auto dp = [](const net::PacketRecord& p) {
    return quantize_port(p.key.dst_port);
  };
  auto pr = [](const net::PacketRecord& p) {
    return static_cast<std::uint64_t>(p.key.protocol);
  };
  rep.jsd["SP"] = jsd(empirical_pmf(collect_u64(real.packets, sp)),
                      empirical_pmf(collect_u64(syn.packets, sp)));
  rep.jsd["DP"] = jsd(empirical_pmf(collect_u64(real.packets, dp)),
                      empirical_pmf(collect_u64(syn.packets, dp)));
  rep.jsd["PR"] = jsd(empirical_pmf(collect_u64(real.packets, pr)),
                      empirical_pmf(collect_u64(syn.packets, pr)));

  auto ps = [](const net::PacketRecord& p) { return static_cast<double>(p.size); };
  auto pat = [](const net::PacketRecord& p) { return p.timestamp * 1e3; };
  rep.emd["PS"] = emd_1d(collect_f64(real.packets, ps), collect_f64(syn.packets, ps));
  rep.emd["PAT"] = emd_1d(collect_f64(real.packets, pat), collect_f64(syn.packets, pat));

  // FS: flow size (packets per 5-tuple).
  auto fs = [](const net::PacketTrace& t) {
    std::vector<double> sizes;
    for (const auto& agg : net::aggregate_flows(t)) {
      sizes.push_back(static_cast<double>(agg.packets));
    }
    return sizes;
  };
  rep.emd["FS"] = emd_1d(fs(real), fs(syn));
  return rep;
}

std::vector<double> mean_normalized_emds(
    const std::vector<FidelityReport>& reports) {
  std::vector<double> result(reports.size(), 0.0);
  if (reports.empty()) return result;
  std::size_t field_count = 0;
  for (const auto& [field, v0] : reports[0].emd) {
    (void)v0;
    std::vector<double> col;
    col.reserve(reports.size());
    for (const auto& rep : reports) col.push_back(rep.emd.at(field));
    const std::vector<double> norm = normalize_emds(col);
    for (std::size_t i = 0; i < reports.size(); ++i) result[i] += norm[i];
    ++field_count;
  }
  if (field_count > 0) {
    for (auto& r : result) r /= static_cast<double>(field_count);
  }
  return result;
}

}  // namespace netshare::metrics
