#include "metrics/rank.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace netshare::metrics {

std::vector<double> midranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return values[i] < values[j];
  });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mid = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mid;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("spearman: size mismatch");
  if (a.size() < 2) throw std::invalid_argument("spearman: need >= 2 pairs");
  const std::vector<double> ra = midranks(a);
  const std::vector<double> rb = midranks(b);
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = ra[i] - ma;
    const double db = rb[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace netshare::metrics
