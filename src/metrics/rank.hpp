// Spearman's rank correlation — the paper's order-preservation metric for
// downstream tasks (Tables 3 and 4).
#pragma once

#include <span>
#include <vector>

namespace netshare::metrics {

// Average ranks with ties (1-based midranks).
std::vector<double> midranks(std::span<const double> values);

// Spearman's rho between paired observations; throws on size mismatch or
// n < 2. Returns a value in [-1, 1] (0 if either side is constant).
double spearman(std::span<const double> a, std::span<const double> b);

}  // namespace netshare::metrics
