// Distribution distance metrics used throughout the evaluation:
// Jensen-Shannon divergence for categorical fields and Earth Mover's
// Distance (1-D Wasserstein) for continuous fields, following the paper's
// metric choices (Sec. 6.1).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace netshare::metrics {

// Normalized histogram over integer-keyed categories.
using Pmf = std::map<std::uint64_t, double>;

// Builds a PMF from raw categorical observations.
Pmf empirical_pmf(std::span<const std::uint64_t> values);

// Rank-frequency profile: the sorted (descending) frequency vector, as a PMF
// over rank indices. The paper's SA/DA metric compares address popularity
// profiles this way.
Pmf rank_frequency_pmf(std::span<const std::uint64_t> values);

// Jensen-Shannon divergence in bits, in [0, 1]. Missing keys count as 0.
double jsd(const Pmf& p, const Pmf& q);

// Earth Mover's Distance (Wasserstein-1) between two empirical 1-D sample
// sets = integral of |CDF_a - CDF_b| (the paper's footnote 7 geometric
// interpretation). Inputs need not be sorted or equal-sized.
double emd_1d(std::vector<double> a, std::vector<double> b);

// Per-field EMD normalization across models: affinely maps the values of
// each field (across all models) to [0.1, 0.9], per the paper's footnote 1.
// Degenerate (all-equal) inputs map to 0.1.
std::vector<double> normalize_emds(std::span<const double> emds);

}  // namespace netshare::metrics
