#include "metrics/divergence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netshare::metrics {

Pmf empirical_pmf(std::span<const std::uint64_t> values) {
  Pmf pmf;
  if (values.empty()) return pmf;
  for (std::uint64_t v : values) pmf[v] += 1.0;
  const double n = static_cast<double>(values.size());
  for (auto& [k, p] : pmf) p /= n;
  return pmf;
}

Pmf rank_frequency_pmf(std::span<const std::uint64_t> values) {
  Pmf by_value = empirical_pmf(values);
  std::vector<double> freqs;
  freqs.reserve(by_value.size());
  for (const auto& [k, p] : by_value) freqs.push_back(p);
  std::sort(freqs.begin(), freqs.end(), std::greater<>());
  Pmf by_rank;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    by_rank[i] = freqs[i];
  }
  return by_rank;
}

double jsd(const Pmf& p, const Pmf& q) {
  auto kl_to_mixture = [](const Pmf& a, const Pmf& b) {
    double kl = 0.0;
    for (const auto& [k, pa] : a) {
      if (pa <= 0.0) continue;
      auto it = b.find(k);
      const double pb = it == b.end() ? 0.0 : it->second;
      const double m = 0.5 * (pa + pb);
      kl += pa * std::log2(pa / m);
    }
    return kl;
  };
  return 0.5 * kl_to_mixture(p, q) + 0.5 * kl_to_mixture(q, p);
}

double emd_1d(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("emd_1d: empty sample set");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Integrate |F_a(x) - F_b(x)| over the merged breakpoints.
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0, ib = 0;
  double emd = 0.0;
  double prev = std::min(a[0], b[0]);
  while (ia < a.size() || ib < b.size()) {
    const double xa = ia < a.size() ? a[ia] : std::numeric_limits<double>::infinity();
    const double xb = ib < b.size() ? b[ib] : std::numeric_limits<double>::infinity();
    const double x = std::min(xa, xb);
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    emd += std::fabs(fa - fb) * (x - prev);
    prev = x;
    if (xa <= xb) ++ia;
    if (xb <= xa) ++ib;
  }
  return emd;
}

std::vector<double> normalize_emds(std::span<const double> emds) {
  std::vector<double> out(emds.size(), 0.1);
  if (emds.empty()) return out;
  const auto [lo_it, hi_it] = std::minmax_element(emds.begin(), emds.end());
  const double lo = *lo_it, hi = *hi_it;
  if (hi <= lo) return out;
  for (std::size_t i = 0; i < emds.size(); ++i) {
    out[i] = 0.1 + 0.8 * (emds[i] - lo) / (hi - lo);
  }
  return out;
}

}  // namespace netshare::metrics
