#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace netshare::eval {

std::string format_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& name,
                        std::span<const double> values, int precision) {
  std::vector<std::string> cells{name};
  for (double v : values) cells.push_back(format_double(v, precision));
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
          << rows_[r][c];
    }
    out << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t w : widths) total += w + 2;
      out << std::string(total, '-') << '\n';
    }
  }
}

void print_banner(std::ostream& out, const std::string& title) {
  out << "\n=== " << title << " ===\n";
}

void print_train_report(std::ostream& out, const core::TrainReport& report) {
  print_banner(out, "Training report");
  // Per-chunk stage timings: chunks complete out of lockstep under the
  // streaming pipeline, so aggregate stage seconds alone hide the overlap.
  TextTable table({"chunk", "role", "status", "attempts", "rollbacks",
                   "train_s", "gen_s", "detail"});
  for (std::size_t c = 0; c < report.chunks.size(); ++c) {
    const core::ChunkTrainReport& r = report.chunks[c];
    table.add_row({std::to_string(c), r.is_seed ? "seed" : "fine-tune",
                   core::to_string(r.status), std::to_string(r.attempts),
                   std::to_string(r.rollbacks), format_double(r.train_sec, 3),
                   format_double(r.generate_sec, 3), r.error});
  }
  table.print(out);
  const auto fallbacks =
      report.count(core::ChunkTrainReport::Status::kSeedFallback);
  out << report.count(core::ChunkTrainReport::Status::kTrained)
      << " trained, "
      << report.count(core::ChunkTrainReport::Status::kResumed)
      << " resumed, " << fallbacks << " seed-fallback, "
      << report.count(core::ChunkTrainReport::Status::kEmpty) << " empty\n";
}

void print_cdf(std::ostream& out, const std::string& label,
               std::vector<double> samples) {
  if (samples.empty()) {
    out << label << ": (no samples)\n";
    return;
  }
  std::sort(samples.begin(), samples.end());
  out << label << " CDF:";
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const auto idx = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    out << "  p" << static_cast<int>(q * 100) << "="
        << format_double(samples[idx], 2);
  }
  out << '\n';
}

}  // namespace netshare::eval
