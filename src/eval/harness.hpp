// Shared evaluation harness for the paper-reproduction benches: NetShare
// adapters implementing the synthesizer interfaces, standard model sets, and
// fit+generate runners that record per-model CPU cost.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/netshare.hpp"
#include "gan/ctgan.hpp"
#include "gan/ewgan_gp.hpp"
#include "gan/packet_gans.hpp"
#include "gan/stan.hpp"
#include "gan/synthesizer.hpp"

namespace netshare::eval {

// Global effort scale for benches: sizes and iteration counts multiply by
// this. Reads the NETSHARE_BENCH_SCALE environment variable ("quick" = 0.5,
// "full" = 2.0, default 1.0, or a numeric factor).
double bench_scale();

// Scaled iteration count helper.
int scaled(int base);

struct EvalOptions {
  std::uint64_t seed = 7;
  // Budgets sized for a single-core CI box; scale with NETSHARE_BENCH_SCALE.
  int gan_iterations = 350;       // tabular baselines
  int netshare_seed_iters = 350;  // NetShare chunk-0
  int netshare_ft_iters = 120;    // NetShare later chunks
  std::size_t netshare_chunks = 4;
  std::size_t max_seq_len = 7;
  bool include_netshare_v0 = false;
};

// NetShare wrapped as a FlowSynthesizer / PacketSynthesizer.
class NetShareFlowSynthesizer : public gan::FlowSynthesizer {
 public:
  NetShareFlowSynthesizer(core::NetShareConfig config,
                          std::shared_ptr<embed::Ip2Vec> ip2vec,
                          std::string display_name = "NetShare");

  std::string name() const override { return name_; }
  void fit(const net::FlowTrace& trace) override { model_.fit(trace); }
  net::FlowTrace generate(std::size_t n, Rng& rng) override {
    return model_.generate_flows(n, rng);
  }
  double train_cpu_seconds() const override {
    return model_.train_cpu_seconds();
  }
  core::NetShare& model() { return model_; }

 private:
  core::NetShare model_;
  std::string name_;
};

class NetSharePacketSynthesizer : public gan::PacketSynthesizer {
 public:
  NetSharePacketSynthesizer(core::NetShareConfig config,
                            std::shared_ptr<embed::Ip2Vec> ip2vec,
                            std::string display_name = "NetShare");

  std::string name() const override { return name_; }
  void fit(const net::PacketTrace& trace) override { model_.fit(trace); }
  net::PacketTrace generate(std::size_t n, Rng& rng) override {
    return model_.generate_packets(n, rng);
  }
  double train_cpu_seconds() const override {
    return model_.train_cpu_seconds();
  }
  core::NetShare& model() { return model_; }

 private:
  core::NetShare model_;
  std::string name_;
};

// Shared (process-wide, lazily built) public IP2Vec model.
std::shared_ptr<embed::Ip2Vec> shared_public_ip2vec();

// The paper's NetShare configuration at bench scale.
core::NetShareConfig bench_netshare_config(const EvalOptions& opt);

// Standard baseline sets per Sec. 6.1: NetFlow -> {CTGAN, E-WGAN-GP, STAN};
// PCAP -> {CTGAN, PAC-GAN, PacketCGAN, Flow-WGAN}. NetShare is prepended.
std::vector<std::unique_ptr<gan::FlowSynthesizer>> standard_flow_models(
    const EvalOptions& opt);
std::vector<std::unique_ptr<gan::PacketSynthesizer>> standard_packet_models(
    const EvalOptions& opt);

// Fit + generate runners.
struct FlowModelRun {
  std::string name;
  net::FlowTrace synthetic;
  double cpu_seconds = 0.0;
};
struct PacketModelRun {
  std::string name;
  net::PacketTrace synthetic;
  double cpu_seconds = 0.0;
};

std::vector<FlowModelRun> run_flow_models(
    std::vector<std::unique_ptr<gan::FlowSynthesizer>> models,
    const net::FlowTrace& real, std::size_t n_out, std::uint64_t seed);
std::vector<PacketModelRun> run_packet_models(
    std::vector<std::unique_ptr<gan::PacketSynthesizer>> models,
    const net::PacketTrace& real, std::size_t n_out, std::uint64_t seed);

}  // namespace netshare::eval
