// Plain-text reporting helpers so each bench binary prints the same rows /
// series the corresponding paper table or figure shows.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/train.hpp"

namespace netshare::eval {

// Fixed-width table: header row + value rows, printed with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Convenience: name + numeric cells with fixed precision.
  void add_row(const std::string& name, std::span<const double> values,
               int precision = 3);

  void print(std::ostream& out) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Prints a figure banner ("=== Figure 10a: ... ===").
void print_banner(std::ostream& out, const std::string& title);

// Renders an empirical CDF as quantile series (the textual analogue of the
// paper's CDF plots): prints value at fixed cumulative probabilities.
void print_cdf(std::ostream& out, const std::string& label,
               std::vector<double> samples);

std::string format_double(double v, int precision = 3);

// Renders a ChunkedTrainer fault-isolation report (DESIGN.md §9): one row
// per chunk with role, status, attempts, rollbacks, and any failure detail.
void print_train_report(std::ostream& out, const core::TrainReport& report);

}  // namespace netshare::eval
