// Shared fidelity-figure renderer for Figures 10, 16, 17: runs the standard
// model set on one dataset and prints per-field JSD and normalized-EMD
// tables (rows = models, columns = fields + mean).
#pragma once

#include <iosfwd>

#include "datagen/presets.hpp"
#include "eval/harness.hpp"

namespace netshare::eval {

struct FidelityFigureResult {
  std::vector<std::string> model_names;
  std::vector<double> mean_jsd;
  std::vector<double> mean_norm_emd;
};

// Generates the dataset, fits every standard model, prints the JSD/EMD
// tables, and returns the aggregates.
FidelityFigureResult fidelity_figure(std::ostream& out,
                                     datagen::DatasetId dataset,
                                     std::size_t records,
                                     const EvalOptions& options,
                                     std::uint64_t seed);

}  // namespace netshare::eval
