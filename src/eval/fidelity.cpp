#include "eval/fidelity.hpp"

#include <ostream>

#include "eval/report.hpp"
#include "metrics/field_metrics.hpp"

namespace netshare::eval {

FidelityFigureResult fidelity_figure(std::ostream& out,
                                     datagen::DatasetId dataset,
                                     std::size_t records,
                                     const EvalOptions& options,
                                     std::uint64_t seed) {
  const auto bundle = datagen::make_dataset(dataset, records, seed);
  std::vector<std::string> names;
  std::vector<metrics::FidelityReport> reports;

  if (bundle.is_pcap) {
    auto runs = run_packet_models(standard_packet_models(options),
                                  bundle.packets, bundle.packets.size(),
                                  seed + 1);
    for (const auto& run : runs) {
      names.push_back(run.name);
      reports.push_back(metrics::compare_packets(bundle.packets, run.synthetic));
    }
  } else {
    auto runs = run_flow_models(standard_flow_models(options), bundle.flows,
                                bundle.flows.size(), seed + 1);
    for (const auto& run : runs) {
      names.push_back(run.name);
      reports.push_back(metrics::compare_flows(bundle.flows, run.synthetic));
    }
  }

  // JSD table.
  print_banner(out, "JSD (lower is better) on " + bundle.name);
  std::vector<std::string> jsd_header{"model"};
  for (const auto& [field, v] : reports[0].jsd) {
    (void)v;
    jsd_header.push_back(field);
  }
  jsd_header.push_back("mean");
  TextTable jsd_table(std::move(jsd_header));
  FidelityFigureResult result;
  result.model_names = names;
  for (std::size_t m = 0; m < reports.size(); ++m) {
    std::vector<double> row;
    for (const auto& [field, v] : reports[m].jsd) {
      (void)field;
      row.push_back(v);
    }
    row.push_back(reports[m].mean_jsd());
    result.mean_jsd.push_back(reports[m].mean_jsd());
    jsd_table.add_row(names[m], row);
  }
  jsd_table.print(out);

  // Normalized-EMD table (per-field normalization across models).
  print_banner(out, "Normalized EMD (lower is better) on " + bundle.name);
  std::vector<std::string> emd_header{"model"};
  for (const auto& [field, v] : reports[0].emd) {
    (void)v;
    emd_header.push_back(field);
  }
  emd_header.push_back("mean");
  TextTable emd_table(std::move(emd_header));
  // Build normalized columns.
  std::vector<std::vector<double>> norm_rows(reports.size());
  for (const auto& [field, v0] : reports[0].emd) {
    (void)v0;
    std::vector<double> col;
    for (const auto& rep : reports) col.push_back(rep.emd.at(field));
    const auto norm = metrics::normalize_emds(col);
    for (std::size_t m = 0; m < reports.size(); ++m) {
      norm_rows[m].push_back(norm[m]);
    }
  }
  result.mean_norm_emd = metrics::mean_normalized_emds(reports);
  for (std::size_t m = 0; m < reports.size(); ++m) {
    std::vector<double> row = norm_rows[m];
    row.push_back(result.mean_norm_emd[m]);
    emd_table.add_row(names[m], row);
  }
  emd_table.print(out);
  return result;
}

}  // namespace netshare::eval
