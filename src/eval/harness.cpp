#include "eval/harness.hpp"

#include <cstdlib>
#include <string>

#include "telemetry/telemetry.hpp"

namespace netshare::eval {

namespace {
// Progress diagnostics, not warnings: a generous print limit so multi-model
// sweeps stay visible, while still structured + counted like every diag.
telemetry::DiagSite& fit_diag() {
  static telemetry::DiagSite site("eval.harness.fit",
                                  telemetry::Severity::kInfo, 64);
  return site;
}
}  // namespace

double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("NETSHARE_BENCH_SCALE");
    if (!env) return 1.0;
    const std::string s = env;
    if (s == "quick") return 0.5;
    if (s == "full") return 2.0;
    try {
      return std::max(0.05, std::stod(s));
    } catch (const std::exception& e) {
      // Unparseable override: fall back to 1.0, but say so — a silently
      // ignored NETSHARE_BENCH_SCALE makes bench numbers incomparable.
      TELEM_DIAG(::netshare::telemetry::Severity::kWarn,
                 "eval.bench_scale_invalid",
                 "NETSHARE_BENCH_SCALE=\"%s\" is not a number (%s); using 1.0",
                 s.c_str(), e.what());
      return 1.0;
    }
  }();
  return scale;
}

int scaled(int base) {
  return std::max(1, static_cast<int>(base * bench_scale()));
}

NetShareFlowSynthesizer::NetShareFlowSynthesizer(
    core::NetShareConfig config, std::shared_ptr<embed::Ip2Vec> ip2vec,
    std::string display_name)
    : model_(std::move(config), std::move(ip2vec)),
      name_(std::move(display_name)) {}

NetSharePacketSynthesizer::NetSharePacketSynthesizer(
    core::NetShareConfig config, std::shared_ptr<embed::Ip2Vec> ip2vec,
    std::string display_name)
    : model_(std::move(config), std::move(ip2vec)),
      name_(std::move(display_name)) {}

std::shared_ptr<embed::Ip2Vec> shared_public_ip2vec() {
  static std::shared_ptr<embed::Ip2Vec> model =
      core::make_public_ip2vec_for(core::NetShareConfig{});
  return model;
}

core::NetShareConfig bench_netshare_config(const EvalOptions& opt) {
  core::NetShareConfig cfg;
  cfg.seed = opt.seed;
  cfg.max_seq_len = opt.max_seq_len;
  cfg.num_chunks = opt.netshare_chunks;
  cfg.seed_iterations = scaled(opt.netshare_seed_iters);
  cfg.finetune_iterations = scaled(opt.netshare_ft_iters);
  cfg.threads = 4;
  return cfg;
}

namespace {
gan::TabularGanConfig bench_tabular_config(const EvalOptions& opt) {
  gan::TabularGanConfig cfg;
  cfg.iterations = scaled(opt.gan_iterations);
  return cfg;
}
}  // namespace

std::vector<std::unique_ptr<gan::FlowSynthesizer>> standard_flow_models(
    const EvalOptions& opt) {
  std::vector<std::unique_ptr<gan::FlowSynthesizer>> models;
  models.push_back(std::make_unique<NetShareFlowSynthesizer>(
      bench_netshare_config(opt), shared_public_ip2vec()));
  models.push_back(std::make_unique<gan::CtganFlow>(
      gan::CtganConfig{bench_tabular_config(opt), 3}, opt.seed + 11));
  models.push_back(std::make_unique<gan::EwganGpFlow>(
      gan::EwganConfig{bench_tabular_config(opt), 4, 3, 64}, opt.seed + 22));
  gan::StanConfig stan;
  stan.epochs = std::max(2, scaled(6));
  models.push_back(std::make_unique<gan::StanFlow>(stan, opt.seed + 33));
  if (opt.include_netshare_v0) {
    core::NetShareConfig v0 = bench_netshare_config(opt);
    v0.netshare_v0 = true;
    // V0 trains one monolithic model over the whole trace; give it the full
    // budget the chunked version spends in total.
    v0.seed_iterations = scaled(opt.netshare_seed_iters +
                                static_cast<int>(opt.netshare_chunks - 1) *
                                    opt.netshare_ft_iters);
    models.push_back(std::make_unique<NetShareFlowSynthesizer>(
        v0, shared_public_ip2vec(), "NetShare-V0"));
  }
  return models;
}

std::vector<std::unique_ptr<gan::PacketSynthesizer>> standard_packet_models(
    const EvalOptions& opt) {
  std::vector<std::unique_ptr<gan::PacketSynthesizer>> models;
  models.push_back(std::make_unique<NetSharePacketSynthesizer>(
      bench_netshare_config(opt), shared_public_ip2vec()));
  models.push_back(std::make_unique<gan::CtganPacket>(
      gan::CtganConfig{bench_tabular_config(opt), 3}, opt.seed + 11));
  models.push_back(gan::make_pac_gan(
      gan::PacketGanConfig{bench_tabular_config(opt)}, opt.seed + 22));
  models.push_back(gan::make_packet_cgan(
      gan::PacketGanConfig{bench_tabular_config(opt)}, opt.seed + 33));
  models.push_back(gan::make_flow_wgan(
      gan::PacketGanConfig{bench_tabular_config(opt)}, opt.seed + 44));
  if (opt.include_netshare_v0) {
    core::NetShareConfig v0 = bench_netshare_config(opt);
    v0.netshare_v0 = true;
    v0.seed_iterations = scaled(opt.netshare_seed_iters +
                                static_cast<int>(opt.netshare_chunks - 1) *
                                    opt.netshare_ft_iters);
    models.push_back(std::make_unique<NetSharePacketSynthesizer>(
        v0, shared_public_ip2vec(), "NetShare-V0"));
  }
  return models;
}

std::vector<FlowModelRun> run_flow_models(
    std::vector<std::unique_ptr<gan::FlowSynthesizer>> models,
    const net::FlowTrace& real, std::size_t n_out, std::uint64_t seed) {
  std::vector<FlowModelRun> runs;
  for (auto& model : models) {
    fit_diag().emit("fitting %s", model->name().c_str());
    model->fit(real);
    Rng rng(seed ^ std::hash<std::string>{}(model->name()));
    runs.push_back(
        {model->name(), model->generate(n_out, rng), model->train_cpu_seconds()});
  }
  return runs;
}

std::vector<PacketModelRun> run_packet_models(
    std::vector<std::unique_ptr<gan::PacketSynthesizer>> models,
    const net::PacketTrace& real, std::size_t n_out, std::uint64_t seed) {
  std::vector<PacketModelRun> runs;
  for (auto& model : models) {
    fit_diag().emit("fitting %s", model->name().c_str());
    model->fit(real);
    Rng rng(seed ^ std::hash<std::string>{}(model->name()));
    runs.push_back(
        {model->name(), model->generate(n_out, rng), model->train_cpu_seconds()});
  }
  return runs;
}

}  // namespace netshare::eval
