#include "sketch/count_min.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace netshare::sketch {

std::uint64_t sketch_hash(std::uint64_t key, std::uint64_t seed) {
  std::uint64_t x = key ^ (seed * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

CountMinSketch::CountMinSketch(std::size_t depth, std::size_t width,
                               std::uint64_t seed)
    : depth_(depth), width_(width), seed_(seed),
      counters_(depth * width, 0) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("CountMinSketch: zero dimension");
  }
}

void CountMinSketch::update(std::uint64_t key, std::uint64_t count) {
  for (std::size_t d = 0; d < depth_; ++d) {
    const std::size_t col = sketch_hash(key, seed_ + d) % width_;
    counters_[d * width_ + col] += count;
  }
}

double CountMinSketch::estimate(std::uint64_t key) const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t d = 0; d < depth_; ++d) {
    const std::size_t col = sketch_hash(key, seed_ + d) % width_;
    best = std::min(best, counters_[d * width_ + col]);
  }
  return static_cast<double>(best);
}

std::size_t CountMinSketch::memory_bytes() const {
  return counters_.size() * sizeof(std::uint64_t);
}

void CountMinSketch::clear() {
  std::fill(counters_.begin(), counters_.end(), 0);
}

}  // namespace netshare::sketch
