#include "sketch/nitrosketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace netshare::sketch {

NitroSketch::NitroSketch(std::size_t depth, std::size_t width,
                         double sample_prob, std::uint64_t seed)
    : depth_(depth), width_(width), prob_(sample_prob), seed_(seed),
      rng_(seed ^ 0x5bd1e995), counters_(depth * width, 0.0),
      next_(depth, 0) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("NitroSketch: zero dimension");
  }
  if (sample_prob <= 0.0 || sample_prob > 1.0) {
    throw std::invalid_argument("NitroSketch: sample_prob out of (0,1]");
  }
  for (std::size_t d = 0; d < depth_; ++d) arm_row(d);
}

void NitroSketch::arm_row(std::size_t d) {
  // Geometric(p) number of updates until the row samples again.
  if (prob_ >= 1.0) {
    next_[d] = 0;
    return;
  }
  const double u = std::max(1e-12, rng_.uniform());
  next_[d] = static_cast<long>(std::floor(std::log(u) / std::log1p(-prob_)));
}

void NitroSketch::update(std::uint64_t key, std::uint64_t count) {
  // Per NitroSketch, each row samples updates independently with prob p and
  // adds count/p when it fires.
  for (std::uint64_t c = 0; c < count; ++c) {
    for (std::size_t d = 0; d < depth_; ++d) {
      if (next_[d] > 0) {
        --next_[d];
        continue;
      }
      const std::uint64_t h = sketch_hash(key, seed_ + d);
      const std::size_t col = h % width_;
      const double sign = (h >> 63) ? 1.0 : -1.0;
      counters_[d * width_ + col] += sign / prob_;
      arm_row(d);
    }
  }
}

double NitroSketch::estimate(std::uint64_t key) const {
  std::vector<double> vals(depth_);
  for (std::size_t d = 0; d < depth_; ++d) {
    const std::uint64_t h = sketch_hash(key, seed_ + d);
    const std::size_t col = h % width_;
    const double sign = (h >> 63) ? 1.0 : -1.0;
    vals[d] = sign * counters_[d * width_ + col];
  }
  std::nth_element(vals.begin(), vals.begin() + static_cast<long>(depth_ / 2),
                   vals.end());
  return std::max(0.0, vals[depth_ / 2]);
}

std::size_t NitroSketch::memory_bytes() const {
  return counters_.size() * sizeof(double);
}

void NitroSketch::clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
  for (std::size_t d = 0; d < depth_; ++d) arm_row(d);
}

}  // namespace netshare::sketch
