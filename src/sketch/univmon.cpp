#include "sketch/univmon.hpp"

#include <algorithm>
#include <stdexcept>

namespace netshare::sketch {

UnivMon::UnivMon(std::size_t levels, std::size_t depth, std::size_t width,
                 std::uint64_t seed)
    : seed_(seed) {
  if (levels == 0) throw std::invalid_argument("UnivMon: zero levels");
  sketches_.reserve(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    sketches_.emplace_back(depth, width, seed + 101 * l);
  }
  level_keys_.resize(levels);
}

bool UnivMon::sampled_at(std::uint64_t key, std::size_t level) const {
  if (level == 0) return true;
  const std::uint64_t h = sketch_hash(key, seed_ ^ 0xabcdef);
  // Key survives to level l iff its l lowest sampling bits are all 1.
  const std::uint64_t mask = (std::uint64_t{1} << level) - 1;
  return (h & mask) == mask;
}

void UnivMon::update(std::uint64_t key, std::uint64_t count) {
  for (std::size_t l = 0; l < sketches_.size(); ++l) {
    if (!sampled_at(key, l)) break;
    sketches_[l].update(key, count);
    level_keys_[l].insert(key);
  }
}

double UnivMon::estimate(std::uint64_t key) const {
  return sketches_[0].estimate(key);
}

std::size_t UnivMon::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& s : sketches_) total += s.memory_bytes();
  return total;
}

void UnivMon::clear() {
  for (auto& s : sketches_) s.clear();
  for (auto& ks : level_keys_) ks.clear();
}

double UnivMon::g_sum(const std::function<double(double)>& g) const {
  // Bottom-up recursion: Y_L = sum over level-L HHs of g(w);
  // Y_l = 2*Y_{l+1} + sum over level-l HHs of g(w)*(1 - 2*I[sampled at l+1]).
  const std::size_t L = sketches_.size();
  auto top_keys = [&](std::size_t l) {
    std::vector<std::pair<double, std::uint64_t>> ranked;
    for (std::uint64_t key : level_keys_[l]) {
      ranked.push_back({sketches_[l].estimate(key), key});
    }
    std::sort(ranked.rbegin(), ranked.rend());
    if (ranked.size() > kTopK) ranked.resize(kTopK);
    return ranked;
  };

  double y = 0.0;
  for (const auto& [w, key] : top_keys(L - 1)) {
    (void)key;
    if (w > 0) y += g(w);
  }
  for (std::size_t l = L - 1; l-- > 0;) {
    double yl = 2.0 * y;
    for (const auto& [w, key] : top_keys(l)) {
      if (w <= 0) continue;
      const double indicator = sampled_at(key, l + 1) ? 1.0 : 0.0;
      yl += g(w) * (1.0 - 2.0 * indicator);
    }
    y = std::max(0.0, yl);
  }
  return y;
}

}  // namespace netshare::sketch
