#include "sketch/count_sketch.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace netshare::sketch {

CountSketch::CountSketch(std::size_t depth, std::size_t width,
                         std::uint64_t seed)
    : depth_(depth), width_(width), seed_(seed), counters_(depth * width, 0.0) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("CountSketch: zero dimension");
  }
}

void CountSketch::update(std::uint64_t key, std::uint64_t count) {
  update_scaled(key, static_cast<double>(count));
}

void CountSketch::update_scaled(std::uint64_t key, double amount) {
  for (std::size_t d = 0; d < depth_; ++d) {
    const std::uint64_t h = sketch_hash(key, seed_ + d);
    const std::size_t col = h % width_;
    const double sign = (h >> 63) ? 1.0 : -1.0;
    counters_[d * width_ + col] += sign * amount;
  }
}

double CountSketch::signed_estimate(std::uint64_t key) const {
  std::vector<double> vals(depth_);
  for (std::size_t d = 0; d < depth_; ++d) {
    const std::uint64_t h = sketch_hash(key, seed_ + d);
    const std::size_t col = h % width_;
    const double sign = (h >> 63) ? 1.0 : -1.0;
    vals[d] = sign * counters_[d * width_ + col];
  }
  std::nth_element(vals.begin(), vals.begin() + static_cast<long>(depth_ / 2),
                   vals.end());
  return vals[depth_ / 2];
}

double CountSketch::estimate(std::uint64_t key) const {
  return std::max(0.0, signed_estimate(key));
}

std::size_t CountSketch::memory_bytes() const {
  return counters_.size() * sizeof(double);
}

void CountSketch::clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
}

}  // namespace netshare::sketch
