// NitroSketch (Liu et al., SIGCOMM 2019): Count Sketch with geometrically
// sampled counter updates scaled by 1/p, trading per-packet cost for
// slightly higher (still unbiased) variance — designed for software
// switches. This implementation uses the "always-line-rate" mode with a
// fixed sampling probability.
#pragma once

#include "common/rng.hpp"
#include "sketch/count_sketch.hpp"

namespace netshare::sketch {

class NitroSketch : public Sketch {
 public:
  NitroSketch(std::size_t depth, std::size_t width, double sample_prob,
              std::uint64_t seed = 1);

  std::string name() const override { return "NitroSketch"; }
  void update(std::uint64_t key, std::uint64_t count = 1) override;
  double estimate(std::uint64_t key) const override;
  std::size_t memory_bytes() const override;
  void clear() override;

  double sample_prob() const { return prob_; }

 private:
  // Geometric skipping per row: next_[d] counts updates until row d samples.
  void arm_row(std::size_t d);

  std::size_t depth_;
  std::size_t width_;
  double prob_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<double> counters_;
  std::vector<long> next_;  // per-row countdown of updates to skip
};

}  // namespace netshare::sketch
