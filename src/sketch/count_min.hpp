// Count-Min Sketch (Cormode & Muthukrishnan 2005).
#pragma once

#include <vector>

#include "sketch/sketch.hpp"

namespace netshare::sketch {

class CountMinSketch : public Sketch {
 public:
  CountMinSketch(std::size_t depth, std::size_t width, std::uint64_t seed = 1);

  std::string name() const override { return "CMS"; }
  void update(std::uint64_t key, std::uint64_t count = 1) override;
  double estimate(std::uint64_t key) const override;
  std::size_t memory_bytes() const override;
  void clear() override;

  std::size_t depth() const { return depth_; }
  std::size_t width() const { return width_; }

 private:
  std::size_t depth_;
  std::size_t width_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> counters_;  // depth x width
};

}  // namespace netshare::sketch
