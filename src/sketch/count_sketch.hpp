// Count Sketch (Charikar, Chen, Farach-Colton 2002): sign hashes + median
// estimator, unbiased.
#pragma once

#include <vector>

#include "sketch/sketch.hpp"

namespace netshare::sketch {

class CountSketch : public Sketch {
 public:
  CountSketch(std::size_t depth, std::size_t width, std::uint64_t seed = 1);

  std::string name() const override { return "CS"; }
  void update(std::uint64_t key, std::uint64_t count = 1) override;
  double estimate(std::uint64_t key) const override;
  std::size_t memory_bytes() const override;
  void clear() override;

  // Signed (unclamped) estimate — used internally by UnivMon.
  double signed_estimate(std::uint64_t key) const;
  // Scaled update used by NitroSketch.
  void update_scaled(std::uint64_t key, double amount);

 private:
  std::size_t depth_;
  std::size_t width_;
  std::uint64_t seed_;
  std::vector<double> counters_;
};

}  // namespace netshare::sketch
