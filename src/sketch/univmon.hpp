// UnivMon (Liu et al., SIGCOMM 2016): universal sketching via L levels of
// Count Sketches over progressively hash-sampled substreams. Supports point
// queries (level-0 Count Sketch) and G-sum estimation via the bottom-up
// recursion Y_l = g(w_l) applied to per-level heavy hitters.
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sketch/count_sketch.hpp"

namespace netshare::sketch {

class UnivMon : public Sketch {
 public:
  UnivMon(std::size_t levels, std::size_t depth, std::size_t width,
          std::uint64_t seed = 1);

  std::string name() const override { return "UnivMon"; }
  void update(std::uint64_t key, std::uint64_t count = 1) override;
  double estimate(std::uint64_t key) const override;
  std::size_t memory_bytes() const override;
  void clear() override;

  // Estimates sum over distinct keys of g(count) using the universal
  // sketching recursion over per-level heavy hitters.
  double g_sum(const std::function<double(double)>& g) const;

  std::size_t levels() const { return sketches_.size(); }

 private:
  // True iff the key survives sampling down to level l (l leading hash bits
  // are all 1).
  bool sampled_at(std::uint64_t key, std::size_t level) const;

  std::uint64_t seed_;
  std::vector<CountSketch> sketches_;
  // Per-level key tracking for the top-k heavy hitters used by g_sum
  // (software implementation keeps exact key sets per level, as the
  // reference implementation's heap does).
  std::vector<std::unordered_set<std::uint64_t>> level_keys_;
  static constexpr std::size_t kTopK = 32;
};

}  // namespace netshare::sketch
