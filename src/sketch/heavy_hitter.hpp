// Heavy-hitter count-estimation harness (the paper's App. #2, Fig. 13):
// stream keys into a sketch, then measure the sketch's mean relative error
// over the true heavy hitters (keys above a threshold fraction of the
// stream).
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "net/trace.hpp"
#include "sketch/sketch.hpp"

namespace netshare::sketch {

// Key extraction per the paper's Fig. 13 setups.
enum class HeavyHitterKey { kDstIp, kSrcIp, kFiveTuple };

std::vector<std::uint64_t> extract_keys(const net::PacketTrace& trace,
                                        HeavyHitterKey kind);

struct HeavyHitterReport {
  std::size_t num_heavy = 0;           // true heavy hitters found
  double mean_relative_error = 0.0;    // sketch count error over true HHs
};

// Streams keys into the sketch (clearing it first) and evaluates estimates
// against exact counts for all keys whose true count >= threshold_fraction
// of the stream length.
HeavyHitterReport evaluate_heavy_hitters(Sketch& sketch,
                                         std::span<const std::uint64_t> keys,
                                         double threshold_fraction);

}  // namespace netshare::sketch
