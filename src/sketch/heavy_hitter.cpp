#include "sketch/heavy_hitter.hpp"

#include <cmath>
#include <stdexcept>

namespace netshare::sketch {

std::vector<std::uint64_t> extract_keys(const net::PacketTrace& trace,
                                        HeavyHitterKey kind) {
  std::vector<std::uint64_t> keys;
  keys.reserve(trace.size());
  for (const auto& p : trace.packets) {
    switch (kind) {
      case HeavyHitterKey::kDstIp:
        keys.push_back(p.key.dst_ip.value());
        break;
      case HeavyHitterKey::kSrcIp:
        keys.push_back(p.key.src_ip.value());
        break;
      case HeavyHitterKey::kFiveTuple:
        keys.push_back(p.key.hash());
        break;
    }
  }
  return keys;
}

HeavyHitterReport evaluate_heavy_hitters(Sketch& sketch,
                                         std::span<const std::uint64_t> keys,
                                         double threshold_fraction) {
  if (keys.empty()) throw std::invalid_argument("evaluate_heavy_hitters: empty");
  sketch.clear();
  std::unordered_map<std::uint64_t, std::uint64_t> exact;
  exact.reserve(keys.size());
  for (std::uint64_t k : keys) {
    sketch.update(k);
    exact[k] += 1;
  }
  const double threshold =
      threshold_fraction * static_cast<double>(keys.size());

  HeavyHitterReport report;
  double err_sum = 0.0;
  for (const auto& [key, count] : exact) {
    if (static_cast<double>(count) < threshold) continue;
    ++report.num_heavy;
    const double est = sketch.estimate(key);
    err_sum += std::fabs(est - static_cast<double>(count)) /
               static_cast<double>(count);
  }
  if (report.num_heavy > 0) {
    report.mean_relative_error = err_sum / static_cast<double>(report.num_heavy);
  }
  return report;
}

}  // namespace netshare::sketch
