// Common interface for the sketch-based telemetry substrate (App. #2 of the
// paper's downstream tasks): frequency estimation over a key stream.
#pragma once

#include <cstdint>
#include <string>

namespace netshare::sketch {

class Sketch {
 public:
  virtual ~Sketch() = default;
  virtual std::string name() const = 0;
  // Adds `count` occurrences of `key`.
  virtual void update(std::uint64_t key, std::uint64_t count = 1) = 0;
  // Point estimate of the key's total count (may be negative for
  // sign-based sketches before clamping; implementations clamp to >= 0).
  virtual double estimate(std::uint64_t key) const = 0;
  virtual std::size_t memory_bytes() const = 0;
  virtual void clear() = 0;
};

// Pairwise-ish hashing used by all sketches: splitmix over (seed, key).
std::uint64_t sketch_hash(std::uint64_t key, std::uint64_t seed);

}  // namespace netshare::sketch
